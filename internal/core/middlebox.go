package core

import (
	"bytes"
	"crypto/ed25519"
	"crypto/sha256"
	"crypto/x509"
	"errors"
	"fmt"
	"hash"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/certs"
	"repro/internal/enclave"
	"repro/internal/secmem"
	"repro/internal/timing"
	"repro/internal/tls12"
)

// Mode selects which endpoint a middlebox belongs to.
type Mode int

// Middlebox modes (paper §3.4): client-side middleboxes join when they
// see a MiddleboxSupport extension in a passing ClientHello;
// server-side middleboxes optimistically announce themselves toward the
// server.
const (
	ClientSide Mode = iota
	ServerSide
)

// String names the mode.
func (m Mode) String() string {
	if m == ClientSide {
		return "client-side"
	}
	return "server-side"
}

// MiddleboxConfig configures a Middlebox.
type MiddleboxConfig struct {
	// Name is used in logs and defaults from the certificate CN.
	Name string
	// Mode selects client-side or server-side behavior.
	Mode Mode
	// Certificate authenticates the middlebox service provider (MSP)
	// in secondary handshakes (property P3A). Required.
	Certificate *tls12.Certificate
	// CipherSuites restricts the secondary handshake's suites.
	CipherSuites []uint16
	// Enclave, when set, runs the middlebox's TLS termination and data
	// plane inside a (simulated) SGX enclave: secondary sessions
	// attest, and all key material lives in enclave memory, protected
	// from the infrastructure provider (properties P1A/P2/P3B).
	Enclave *enclave.Enclave
	// NewProcessor builds the per-session application-data transformer.
	// Nil forwards data unchanged.
	NewProcessor func() Processor
	// DataPlaneTimeout bounds how long application data arriving
	// before the key material is held (the False-Start-like scenario
	// of §3.5). Defaults to 30 seconds.
	DataPlaneTimeout time.Duration
	// Stopwatch, when set, accumulates the middlebox's handshake
	// compute time (Figure 5: an mbTLS middlebox performs one TLS
	// handshake where split TLS performs two).
	Stopwatch *timing.Stopwatch
	// NeighborRoots, when set, verifies the upstream neighbor's
	// certificate during neighbor-keys hop handshakes (§4.2 mode).
	// Nil skips chain verification on that hop, leaning on the
	// endpoint-side approval that already authenticated the path.
	NeighborRoots *x509.CertPool
	// BufPool, when set, supplies the relay's record buffers from a
	// bounded host-scoped pool, so relay memory is bounded by the pool
	// rather than by session count. Nil uses the process-wide pool.
	BufPool *tls12.RecordBufPool
	// RelayPool, when set, supplies the crypto workers for the
	// order-preserving parallel relay pipeline (DESIGN.md §14). Nil uses
	// the process-wide shared pool; see SerialRelay to opt out of
	// pipelining entirely.
	RelayPool *RelayPool
	// SerialRelay disables the parallel relay pipeline: every batch runs
	// inline on the relay goroutine, as before the pipeline existed.
	// Benchmarks use it as the single-core baseline.
	SerialRelay bool
	// TicketKeys, when set, enables chain-ticket resumption for the
	// middlebox's secondary sessions: it issues STEK-sealed hop tickets
	// named after the middlebox, and resumes returning clients that
	// present one (skipping ECDHE, signing, and attestation on that
	// hop). Host-scoped; share one rotating source (hsfast.STEK)
	// across the host's middleboxes to share its rotation schedule.
	TicketKeys tls12.TicketKeySource
	// KeyShares, when set, supplies precomputed X25519 keyshares for
	// full secondary handshakes (hsfast.KeySharePool). Host-scoped.
	KeyShares tls12.KeyShareSource
	// Accountability selects which accountability mode this middlebox
	// serves: AccountAttest (the default) or AccountProxySig. A session
	// whose endpoint negotiated the other mode is refused with a fatal
	// accountability_mismatch alert on the secondary subchannel.
	Accountability Accountability
	// AccountabilityFaults, when set, injects adversarial proxysig
	// behavior for the fault-matrix suites. Nil in production.
	AccountabilityFaults *AccountabilityFaults
}

// MiddleboxStats are cumulative data-plane counters.
type MiddleboxStats struct {
	Sessions        int64 // connections handled
	MbTLSSessions   int64 // of which joined as an mbTLS middlebox
	RecordsRelayed  int64 // records forwarded verbatim
	RecordsRekeyed  int64 // records opened and resealed on the data plane
	BytesProcessed  int64 // plaintext bytes through the Processor
	AnnounceSkipped int64 // announcements suppressed by the negative cache
	FaultsObserved  int64 // sessions torn down by a fault-classified error
	SessionsResumed int64 // secondary handshakes resumed from hop tickets
	ProxySig        int64 // sessions joined under proxysig accountability
	EvidenceSigned  int64 // signed evidence statements served to endpoints
}

// Middlebox is an mbTLS application-layer middlebox: it relays a TCP
// connection hop, joins mbTLS sessions via discovery, and processes
// application data under per-hop keys.
type Middlebox struct {
	cfg   MiddleboxConfig
	vault enclave.Vault
	bufs  *tls12.RecordBufPool
	// relayPool is the resolved crypto worker pool for the parallel
	// relay pipeline; nil when cfg.SerialRelay opted out.
	relayPool *RelayPool

	// sessionSeq allocates monotonic per-session IDs; each session's
	// vault secrets are namespaced under "session/<id>/" so concurrent
	// sessions sharing one enclave keep per-session key isolation.
	sessionSeq atomic.Uint64

	annMu    sync.Mutex
	annCache map[string]bool // server address -> do not announce again

	sessions        atomic.Int64
	mbtlsSessions   atomic.Int64
	recordsRelayed  atomic.Int64
	recordsRekeyed  atomic.Int64
	bytesProcessed  atomic.Int64
	annSkipped      atomic.Int64
	faultsObserved  atomic.Int64
	sessionsResumed atomic.Int64
	proxySig        atomic.Int64
	evidenceSigned  atomic.Int64
}

// NewMiddlebox builds a middlebox. Key material is stored in an
// EnclaveVault when cfg.Enclave is set, otherwise in host memory — the
// distinction the adversary harness probes (threat model §3.1).
func NewMiddlebox(cfg MiddleboxConfig) (*Middlebox, error) {
	if cfg.Certificate == nil {
		return nil, errors.New("core: middlebox requires a certificate")
	}
	if cfg.Name == "" && cfg.Certificate.Leaf != nil {
		cfg.Name = cfg.Certificate.Leaf.Subject.CommonName
	}
	if cfg.DataPlaneTimeout == 0 {
		cfg.DataPlaneTimeout = 30 * time.Second
	}
	mb := &Middlebox{cfg: cfg, annCache: make(map[string]bool)}
	mb.bufs = cfg.BufPool
	if mb.bufs == nil {
		mb.bufs = tls12.SharedRecordBufPool()
	}
	if !cfg.SerialRelay {
		mb.relayPool = cfg.RelayPool
		if mb.relayPool == nil {
			mb.relayPool = SharedRelayPool()
		}
	}
	if cfg.Enclave != nil {
		mb.vault = enclave.NewEnclaveVault(cfg.Enclave)
	} else {
		mb.vault = enclave.NewHostVault()
	}
	return mb, nil
}

// Vault exposes where this middlebox keeps session secrets, for the
// adversary harness.
func (mb *Middlebox) Vault() enclave.Vault { return mb.vault }

// Name returns the middlebox name.
func (mb *Middlebox) Name() string { return mb.cfg.Name }

// Stats snapshots the cumulative counters.
func (mb *Middlebox) Stats() MiddleboxStats {
	return MiddleboxStats{
		Sessions:        mb.sessions.Load(),
		MbTLSSessions:   mb.mbtlsSessions.Load(),
		RecordsRelayed:  mb.recordsRelayed.Load(),
		RecordsRekeyed:  mb.recordsRekeyed.Load(),
		BytesProcessed:  mb.bytesProcessed.Load(),
		AnnounceSkipped: mb.annSkipped.Load(),
		FaultsObserved:  mb.faultsObserved.Load(),
		SessionsResumed: mb.sessionsResumed.Load(),
		ProxySig:        mb.proxySig.Load(),
		EvidenceSigned:  mb.evidenceSigned.Load(),
	}
}

// shouldAnnounce consults the negative cache (paper §3.4: a middlebox
// whose announcement a server ignored or rejected "will cache this
// information and not announce itself to this server again").
func (mb *Middlebox) shouldAnnounce(serverAddr string) bool {
	mb.annMu.Lock()
	defer mb.annMu.Unlock()
	if mb.annCache[serverAddr] {
		mb.annSkipped.Add(1)
		return false
	}
	return true
}

func (mb *Middlebox) markNoAnnounce(serverAddr string) {
	mb.annMu.Lock()
	mb.annCache[serverAddr] = true
	mb.annMu.Unlock()
}

// HostHooks is implemented by a hosting runtime (internal/sessionhost)
// to observe a hosted session's lifecycle. Accept loops live in the
// runtime, not here: a middlebox only ever handles connections it is
// handed.
type HostHooks interface {
	// SessionEstablished is called at most once, when the session has
	// decided its participation: data plane installed, or settled into
	// a transparent/degraded relay.
	SessionEstablished()
	// RegisterForceClose hands the runtime a function that force-closes
	// the session at the drain deadline. The function seals a
	// close_notify toward both neighbors when per-hop keys exist, then
	// drops the transports; it is safe to call at any point in the
	// session's life, and more than once.
	RegisterForceClose(func())
}

// Handle relays one connection pair until either side closes. down
// faces the client, up faces the server. Per-session vault secrets are
// retained after the session for post-mortem inspection (the adversary
// harness depends on this); hosted sessions use HandleHosted, which
// wipes them.
func (mb *Middlebox) Handle(down, up net.Conn) error {
	return mb.handle(down, up, nil)
}

// HandleHosted is Handle for sessions owned by a hosting runtime: the
// session registers its force-closer and establishment signal with
// hooks, and its namespaced vault secrets are wiped at teardown (a
// long-lived host must not accrete key material for every session it
// ever served).
func (mb *Middlebox) HandleHosted(down, up net.Conn, hooks HostHooks) error {
	return mb.handle(down, up, hooks)
}

func (mb *Middlebox) handle(down, up net.Conn, hooks HostHooks) error {
	mb.sessions.Add(1)
	id := mb.sessionSeq.Add(1)
	s := &mbSession{
		mb:          mb,
		id:          id,
		down:        down,
		downR:       down,
		up:          up,
		hooks:       hooks,
		vaultPrefix: fmt.Sprintf("session/%d/", id),
	}
	s.dpCond = sync.NewCond(&s.dpMu)
	if hooks != nil {
		hooks.RegisterForceClose(s.forceClose)
		defer mb.vault.WipePrefix(s.vaultPrefix)
	}
	return s.run()
}

// mbSession is the per-connection relay state.
type mbSession struct {
	mb *Middlebox
	// id is the session's monotonic ID (also the vault namespace
	// number), used to label pipeline goroutines for profiling.
	id uint64
	// hooks is the hosting runtime's lifecycle surface (nil when the
	// session is driven directly, e.g. by tests and examples).
	hooks HostHooks
	// vaultPrefix namespaces this session's vault secrets
	// ("session/<id>/"), isolating concurrent sessions that share one
	// enclave.
	vaultPrefix string
	estOnce     sync.Once

	down net.Conn
	// downR is the downstream read side: s.down, possibly preceded by
	// bytes already consumed while sniffing the ClientHello.
	downR io.Reader
	up    net.Conn

	downW sync.Mutex
	upW   sync.Mutex

	mbtls    bool
	joinMu   sync.Mutex
	assigned bool
	mySub    uint8
	// maxSubS2C tracks subchannel IDs seen in the server→client
	// direction before this middlebox assigns its own (paper §3.4:
	// "assign themselves the next available subchannel ID").
	maxSubS2C int

	secPipe    *pipeBuf
	secGotData atomic.Bool
	// degraded marks a server-side session continuing transparently
	// after a legacy server ignored our announcement.
	degraded atomic.Bool

	// neighborMode and its hop-handshake pipes (§4.2 neighbor-keys):
	// subchannel-0 traffic from downstream feeds downNPipe (we play
	// the server role there); from upstream, upNPipe (client role).
	neighborMode bool
	downNPipe    *pipeBuf
	upNPipe      *pipeBuf

	helloRaw []byte

	// Accountability state. proxySig reports the negotiated mode (set
	// before the data plane can install, so flushBatch's check is
	// ordered); acctMismatch marks a client-side session whose
	// negotiated mode differs from the configured one (decided at join
	// time, before the secondary goroutine starts). evMu guards the
	// proxysig evidence accumulators: the stored warrant, per-direction
	// running digests of resealed output, and record counts.
	proxySig     atomic.Bool
	acctMismatch bool
	evMu         sync.Mutex
	delegation   []byte
	evC2S        hash.Hash
	evS2C        hash.Hash
	evC2SRecords uint64
	evS2CRecords uint64

	dpMu   sync.Mutex
	dpCond *sync.Cond
	dp     dataPlaneHandler
	dpErr  error

	// Pipeline state (DESIGN.md §14). gates carry each direction's
	// committed sealing position and poison error; bg tracks background
	// reapers run must wait out after closeAll; faultHandled dedups the
	// fault sequence when a commit goroutine already ran it.
	gates        [2]commitGate
	bg           sync.WaitGroup
	faultHandled atomic.Bool
	// fwdSlot/fwdOut are the per-direction single-record slow path's
	// reused batch slot and reseal buffer (alerts and the False-Start
	// window), released when run returns.
	fwdSlot [2][1]tls12.RawRecord
	fwdOut  [2][]byte

	closeOnce sync.Once
}

// storeSecret namespaces a session secret into the vault.
func (s *mbSession) storeSecret(name string, v []byte) {
	s.mb.vault.StoreSecret(s.vaultPrefix+name, v)
}

// notifyEstablished tells the hosting runtime (if any) that the
// session has decided its shape: data plane up, or transparent relay.
func (s *mbSession) notifyEstablished() {
	s.estOnce.Do(func() {
		if s.hooks != nil {
			s.hooks.SessionEstablished()
		}
	})
}

// forceClose ends an in-flight session from the hosting runtime's
// drain deadline. When per-hop keys are installed, both neighbors get
// a sealed close_notify first, so endpoints observe an orderly close
// instead of a bare transport reset; then the transports drop, which
// unwinds the relay goroutines.
func (s *mbSession) forceClose() {
	if s.mbtls && !s.degraded.Load() {
		if dp := s.dataPlaneIfReady(); dp != nil {
			var buf [64]byte
			for _, dir := range []Direction{DirClientToServer, DirServerToClient} {
				s.sealAlertOrdered(dp, dir, tls12.AlertLevelWarning, tls12.AlertCloseNotify, buf[:0]) //nolint:errcheck
			}
		}
	}
	s.closeAll()
}

func (s *mbSession) closeAll() {
	s.closeOnce.Do(func() {
		s.down.Close()
		s.up.Close()
		if s.secPipe != nil {
			s.secPipe.fail(io.ErrClosedPipe)
		}
		if s.downNPipe != nil {
			s.downNPipe.fail(io.ErrClosedPipe)
		}
		if s.upNPipe != nil {
			s.upNPipe.fail(io.ErrClosedPipe)
		}
		s.dpMu.Lock()
		if s.dp == nil && s.dpErr == nil {
			s.dpErr = io.ErrClosedPipe
		}
		s.dpCond.Broadcast()
		s.dpMu.Unlock()
	})
}

// writeRecord serializes and writes a raw record to one side.
func (s *mbSession) writeRecord(conn net.Conn, mu *sync.Mutex, rec tls12.RawRecord) error {
	mu.Lock()
	defer mu.Unlock()
	_, err := conn.Write(rec.Marshal())
	return err
}

// writeWire writes already-framed record bytes to one side.
func (s *mbSession) writeWire(conn net.Conn, mu *sync.Mutex, wire []byte) error {
	mu.Lock()
	defer mu.Unlock()
	_, err := conn.Write(wire)
	return err
}

// outbound returns the connection and write lock for a direction.
func (s *mbSession) outbound(dir Direction) (net.Conn, *sync.Mutex) {
	if dir == DirServerToClient {
		return s.down, &s.downW
	}
	return s.up, &s.upW
}

// forward relays a record unchanged in the given direction.
func (s *mbSession) forward(dir Direction, rec tls12.RawRecord) error {
	s.mb.recordsRelayed.Add(1)
	if dir == DirClientToServer {
		return s.writeRecord(s.up, &s.upW, rec)
	}
	return s.writeRecord(s.down, &s.downW, rec)
}

// forwardWire relays an already-framed record without re-marshaling.
func (s *mbSession) forwardWire(dir Direction, wire []byte) error {
	s.mb.recordsRelayed.Add(1)
	conn, mu := s.outbound(dir)
	return s.writeWire(conn, mu, wire)
}

// writeEncapsulated wraps an inner record for our subchannel toward the
// given side.
func (s *mbSession) writeEncapsulated(conn net.Conn, mu *sync.Mutex, inner []byte) error {
	return s.writeEncapsulatedSub(conn, mu, s.mySub, inner)
}

// writeEncapsulatedSub wraps an inner record for an explicit subchannel.
func (s *mbSession) writeEncapsulatedSub(conn net.Conn, mu *sync.Mutex, sub uint8, inner []byte) error {
	payload := make([]byte, 1+len(inner))
	payload[0] = sub
	copy(payload[1:], inner)
	return s.writeRecord(conn, mu, tls12.RawRecord{Type: tls12.TypeEncapsulated, Payload: payload})
}

// run drives the session: sniff the ClientHello, decide how to
// participate, then relay.
func (s *mbSession) run() error {
	// Registered before closeAll so it runs after it (LIFO): pipeline
	// reapers may be waiting on a commit goroutine wedged in a dead
	// transport write, which only unblocks once closeAll drops the
	// conns. The slow-path reseal buffers are released here too — after
	// every goroutine that could touch them is gone.
	defer func() {
		s.bg.Wait()
		for i := range s.fwdOut {
			if s.fwdOut[i] != nil {
				s.mb.bufs.PutRecordBuf(s.fwdOut[i])
				s.fwdOut[i] = nil
			}
		}
	}()
	defer s.closeAll()

	raw, buffered, helloRaw, maxSubC2S, err := s.collectClientHello()
	if err != nil {
		// The client went away (or sent garbage then closed) before a
		// decision; flush what we saw and relay whatever remains.
		if len(raw) > 0 {
			return s.transparentRaw(raw)
		}
		return err
	}
	if helloRaw == nil {
		// Not TLS at all: a middlebox must not break unrelated
		// traffic — relay bytes transparently.
		return s.transparentRaw(raw)
	}
	s.helloRaw = helloRaw
	hello, _ := tls12.ParseClientHello(helloRaw)

	switch s.mb.cfg.Mode {
	case ClientSide:
		// Join only if the client advertises mbTLS support; otherwise
		// be a transparent relay (paper §3.4: middleboxes
		// "optimistically split the TCP connection and, upon seeing
		// the extension, join the handshake").
		if hello == nil || hello.MiddleboxSupport == nil {
			return s.transparent(buffered)
		}
		s.mbtls = true
		s.neighborMode = hello.MiddleboxSupport.NeighborKeys
		// The client's primary hello carries the negotiated
		// accountability mode for client-side hops. A mismatch with our
		// configured mode is refused in runSecondary (the refusal alert
		// must ride our subchannel, which does not exist yet).
		if hello.MiddleboxSupport.ProxySig != (s.mb.cfg.Accountability == AccountProxySig) {
			s.acctMismatch = true
		} else if hello.MiddleboxSupport.ProxySig {
			s.proxySig.Store(true)
			s.mb.proxySig.Add(1)
		}
		if s.neighborMode {
			s.downNPipe = newPipeBuf(func(b []byte) error {
				return s.writeEncapsulatedSub(s.down, &s.downW, neighborSubchannel, b)
			})
			s.upNPipe = newPipeBuf(func(b []byte) error {
				return s.writeEncapsulatedSub(s.up, &s.upW, neighborSubchannel, b)
			})
		}
		s.mb.mbtlsSessions.Add(1)
		for _, rec := range buffered {
			if err := s.forward(DirClientToServer, rec); err != nil {
				return err
			}
		}
		// The secondary handshake starts when the primary ServerHello
		// passes through (see relay, server→client handshake case).

	case ServerSide:
		serverAddr := s.up.RemoteAddr().String()
		if hello == nil || !s.mb.shouldAnnounce(serverAddr) {
			return s.transparent(buffered)
		}
		if hello.MiddleboxSupport != nil && hello.MiddleboxSupport.NeighborKeys {
			// Server-side middleboxes are out of scope for the
			// neighbor-keys mode; stay transparent rather than break
			// the session.
			return s.transparent(buffered)
		}
		s.mbtls = true
		s.mb.mbtlsSessions.Add(1)
		// Self-assign the next subchannel ID after those used by
		// middleboxes closer to the client, whose announcements
		// precede the ClientHello.
		s.joinMu.Lock()
		s.mySub = uint8(maxSubC2S + 1)
		s.assigned = true
		s.joinMu.Unlock()
		s.secPipe = newPipeBuf(func(b []byte) error {
			return s.writeEncapsulated(s.up, &s.upW, b)
		})
		// Forward the buffer, injecting our announcement ahead of the
		// ClientHello so middleboxes closer to the server count us
		// before they self-assign.
		announced := false
		for _, rec := range buffered {
			if rec.Type == tls12.TypeHandshake && !announced {
				announced = true
				ann := tls12.RawRecord{Type: tls12.TypeMiddleboxAnnouncement, Payload: nil}
				if err := s.writeEncapsulated(s.up, &s.upW, ann.Marshal()); err != nil {
					return err
				}
			}
			if err := s.forward(DirClientToServer, rec); err != nil {
				return err
			}
		}
		go s.runSecondary(serverAddr)
	}

	errc := make(chan error, 2)
	go func() { errc <- s.relay(DirClientToServer) }()
	go func() { errc <- s.relay(DirServerToClient) }()
	err = <-errc
	// The first relay error decides the session's fate. A fault-
	// classified one (reset, MAC damage, protocol violation — anything
	// but a clean EOF) means a hop died: tell both neighbors with a
	// fatal alert before tearing down, so endpoints blocked mid-read
	// fail fast on a protocol-level signal instead of waiting out their
	// deadlines. A pipeline commit goroutine may already have run this
	// sequence for a fault it detected (faultHandled); don't count or
	// propagate twice.
	if cls := ClassifyError(err); cls.isFault() && !s.faultHandled.Load() {
		s.mb.faultsObserved.Add(1)
		s.propagateFault(alertForClass(cls))
	}
	s.closeAll()
	<-errc
	if err == io.EOF || errors.Is(err, io.ErrClosedPipe) || errors.Is(err, net.ErrClosed) {
		return nil
	}
	return err
}

// propagateFault best-effort notifies both sides that the path died.
// After key material the alert must be hop-sealed — a plaintext alert
// would be a MAC failure for a peer holding hop keys — and ordered
// behind any pipelined reseals: sealAlertOrdered rewinds each
// direction's reserved-but-uncommitted sequence range to the committed
// position before sealing, so the alert verifies at the peer, and
// poisons the direction so in-flight commits drop their output instead
// of sealing past it. Before key material a plaintext fatal alert is
// the best available signal (the endpoints are still in their
// plaintext or primary-protected handshake). The writes race the dying
// transports by design; losing that race just means the deadline path
// fires instead.
func (s *mbSession) propagateFault(desc tls12.AlertDescription) {
	if !s.mbtls || s.degraded.Load() {
		return
	}
	if dp := s.dataPlaneIfReady(); dp != nil {
		var buf [64]byte
		for _, dir := range []Direction{DirClientToServer, DirServerToClient} {
			s.sealAlertOrdered(dp, dir, tls12.AlertLevelFatal, desc, buf[:0]) //nolint:errcheck
		}
		return
	}
	plain := tls12.RawRecord{
		Type:    tls12.TypeAlert,
		Payload: []byte{byte(tls12.AlertLevelFatal), byte(desc)},
	}
	s.writeRecord(s.up, &s.upW, plain)     //nolint:errcheck
	s.writeRecord(s.down, &s.downW, plain) //nolint:errcheck
}

// plausibleRecordHeader reports whether a 5-byte prefix looks like a
// TLS(-or-mbTLS) record header. Middleboxes use it to distinguish TLS
// streams (which they may join) from unrelated traffic (which they
// must relay untouched).
func plausibleRecordHeader(typ uint8, version uint16, length int) bool {
	if typ < 20 || typ > 32 {
		return false
	}
	if version < 0x0301 || version > 0x0304 {
		return false
	}
	return length <= 16384+2048
}

// collectClientHello reads bytes from the client side until either a
// complete ClientHello message is parsed (helloRaw non-nil), or the
// stream is determined not to be TLS (helloRaw nil, err nil). raw is
// everything read so far; buffered the records parsed from it.
// Encapsulated records (announcements from middleboxes closer to the
// client, in server-side mode) are counted for subchannel assignment.
// On success, unconsumed bytes beyond the last parsed record are
// re-attached to the downstream reader.
func (s *mbSession) collectClientHello() (raw []byte, buffered []tls12.RawRecord, helloRaw []byte, maxSub int, err error) {
	var hsBuf []byte
	offset := 0
	buf := make([]byte, 4096)
	for {
		// Parse as many complete records as the buffer holds.
		for len(raw)-offset >= recordHeaderLen {
			typ := raw[offset]
			version := uint16(raw[offset+1])<<8 | uint16(raw[offset+2])
			length := int(raw[offset+3])<<8 | int(raw[offset+4])
			if !plausibleRecordHeader(typ, version, length) {
				return raw, nil, nil, 0, nil // not TLS
			}
			if len(raw)-offset < recordHeaderLen+length {
				break // incomplete record
			}
			payload := raw[offset+recordHeaderLen : offset+recordHeaderLen+length]
			offset += recordHeaderLen + length
			rec := tls12.RawRecord{Type: tls12.ContentType(typ), Payload: payload}
			buffered = append(buffered, rec)
			switch rec.Type {
			case tls12.TypeEncapsulated:
				if len(payload) >= 1 && int(payload[0]) > maxSub {
					maxSub = int(payload[0])
				}
			case tls12.TypeHandshake:
				hsBuf = append(hsBuf, payload...)
				if len(hsBuf) >= 4 {
					n := int(hsBuf[1])<<16 | int(hsBuf[2])<<8 | int(hsBuf[3])
					if len(hsBuf) >= 4+n {
						// Leftover bytes belong to the relay phase.
						s.setDownLeftover(raw[offset:])
						return raw, buffered, hsBuf[:4+n], maxSub, nil
					}
				}
			default:
				// TLS framing but not a handshake opening; treat as
				// opaque traffic.
				return raw, nil, nil, maxSub, nil
			}
		}
		n, rerr := s.down.Read(buf)
		if n > 0 {
			raw = append(raw, buf[:n]...)
		}
		if rerr != nil {
			return raw, nil, nil, maxSub, rerr
		}
	}
}

// recordHeaderLen mirrors the TLS record header size.
const recordHeaderLen = 5

// setDownLeftover prepends already-read bytes to the downstream
// record stream.
func (s *mbSession) setDownLeftover(leftover []byte) {
	if len(leftover) == 0 {
		s.downR = s.down
		return
	}
	s.downR = io.MultiReader(bytes.NewReader(append([]byte(nil), leftover...)), s.down)
}

// transparentRaw splices the two sides at byte level after flushing
// already-read bytes (non-TLS traffic, legacy clients, or servers on
// the announcement negative-cache).
func (s *mbSession) transparentRaw(initial []byte) error {
	s.notifyEstablished()
	if len(initial) > 0 {
		s.upW.Lock()
		_, err := s.up.Write(initial)
		s.upW.Unlock()
		if err != nil {
			return err
		}
	}
	errc := make(chan error, 2)
	go func() { errc <- s.spliceOneWay(s.up, s.downR) }()
	go func() { errc <- s.spliceOneWay(s.down, s.up) }()
	err := <-errc
	s.closeAll()
	<-errc
	if err == io.EOF {
		return nil
	}
	return err
}

// transparent splices the two sides without interpreting records
// (legacy traffic, or a server on the announcement negative-cache).
func (s *mbSession) transparent(buffered []tls12.RawRecord) error {
	s.notifyEstablished()
	for _, rec := range buffered {
		if err := s.forward(DirClientToServer, rec); err != nil {
			return err
		}
	}
	errc := make(chan error, 2)
	go func() { errc <- s.spliceOneWay(s.up, s.downR) }()
	go func() { errc <- s.spliceOneWay(s.down, s.up) }()
	err := <-errc
	s.closeAll()
	<-errc
	return err
}

// spliceOneWay copies bytes src→dst. When the middlebox application
// lives in an enclave, every chunk still traverses it — the paper's
// forwarding-only enclave configuration (Figure 7, "No Encryption +
// Enclave"): the application receives and sends from inside the
// enclave even when it performs no cryptography.
func (s *mbSession) spliceOneWay(dst net.Conn, src io.Reader) error {
	buf := make([]byte, 32<<10)
	var inEnclave []byte
	for {
		n, err := src.Read(buf)
		if n > 0 {
			chunk := buf[:n]
			if e := s.mb.cfg.Enclave; e != nil {
				e.Enter(func(enclave.Memory) {
					inEnclave = append(inEnclave[:0], chunk...)
				})
				chunk = inEnclave
			}
			if _, werr := dst.Write(chunk); werr != nil {
				return werr
			}
		}
		if err != nil {
			return err
		}
	}
}

// maxRelayBatch caps how many records one data-plane batch (and thus
// one ecall and one outbound write) may carry, bounding latency and the
// size of the reseal buffer.
const maxRelayBatch = 32

// relayLoop pumps records in one direction, participating in the mbTLS
// handshake and data plane as required. Steady-state application data
// is drained in batches: every buffered record headed for the data
// plane is collected and opened/transformed/resealed as one unit.
// When the middlebox has a RelayPool, batches are submitted to the
// order-preserving parallel pipeline (pipeline.go): sequence numbers
// are reserved at intake, workers run the crypto concurrently, and the
// per-direction commit goroutine releases output in arrival order —
// the relay keeps reading ahead while crypto is in flight. Without a
// pool (SerialRelay), or when the data plane declines out-of-order
// processing, the batch runs inline as before. Everything else
// (handshake, discovery, alerts) takes the per-record slow path,
// always behind a pipeline flush so slow-path writes never overtake
// pipelined output.
func (s *mbSession) relayLoop(dir Direction) error {
	src := s.downR
	if dir == DirServerToClient {
		src = io.Reader(s.up)
	}
	rr := newRecordReader(src)
	defer rr.release()
	// Pipeline state, created lazily at the first fast-path batch so
	// handshake-only and non-mbTLS sessions pay nothing.
	var pl *dirPipeline
	defer func() {
		if pl != nil {
			pl.shutdown()
		}
	}()
	// Reused per-direction batch state; each direction is driven by
	// exactly one goroutine, so no locking here.
	batch := make([]tls12.RawRecord, 0, maxRelayBatch)
	out := s.mb.bufs.GetRecordBuf()
	defer s.mb.bufs.PutRecordBuf(out)
	for {
		rec, wire, err := rr.next()
		if err != nil {
			// The read error may be the echo of a fault this direction's
			// commit goroutine already detected and acted on (it closes
			// the transports); surface the original fault instead of the
			// secondary close error.
			if pl != nil {
				if gerr := pl.takeErr(); gerr != nil && !errors.Is(gerr, io.ErrClosedPipe) {
					return gerr
				}
			}
			return err
		}
		dp := s.batchReady(dir, rec)
		if dp == nil {
			if pl != nil {
				if err := pl.flush(); err != nil {
					return err
				}
			}
			if err := s.handleRecordWire(dir, rec, wire); err != nil {
				return err
			}
			continue
		}
		if pl == nil && s.mb.relayPool != nil {
			pl = newDirPipeline(s, dir, s.mb.relayPool)
		}
		// Fast path: drain every already-buffered data record into one
		// batch. A record with a different disposition ends the batch
		// and is handled after the flush, preserving stream order.
		// Pipelined batches are capped lower than serial ones so one
		// buffer drain splits across several workers.
		limit := maxRelayBatch
		pipelined := pl != nil && !pl.serialOnly
		if pipelined {
			limit = pipelineJobRecords
		}
		batch = append(batch[:0], rec)
		var tail tls12.RawRecord
		var tailWire []byte
		for len(batch) < limit && rr.buffered() {
			next, nextWire, err := rr.next()
			if err != nil {
				return err
			}
			if s.batchReady(dir, next) == nil {
				tail, tailWire = next, nextWire
				break
			}
			batch = append(batch, next)
		}
		// A batch ended by a non-data tail must run serially: the tail's
		// bytes sit in the read buffer behind the batch records, and
		// submitting would detach that buffer into the job — the tail
		// slices would alias storage the commit stage recycles.
		if pipelined && tailWire == nil {
			submitted, serr := pl.submit(dp, rr, batch)
			if serr != nil {
				return serr
			}
			if submitted {
				continue
			}
			// The data plane declined (a Processor is installed, which
			// needs ordered plaintext input): latch onto the serial path
			// so later batches regain the full serial batch size.
			pl.serialOnly = true
		}
		if pl != nil {
			if err := pl.flush(); err != nil {
				return err
			}
		}
		if out, err = s.flushBatch(dir, dp, batch, out); err != nil {
			return err
		}
		if tailWire != nil {
			if err := s.handleRecordWire(dir, tail, tailWire); err != nil {
				return err
			}
		}
	}
}

// batchReady returns the data plane when rec can take the batched fast
// path: steady-state application data on a joined, non-degraded session
// whose per-hop keys are already installed. Everything else (including
// the False-Start window before key material arrives) goes through
// handleRecordWire.
func (s *mbSession) batchReady(dir Direction, rec tls12.RawRecord) dataPlaneHandler {
	if rec.Type != tls12.TypeApplicationData || !s.mbtls || s.degraded.Load() {
		return nil
	}
	if s.mb.cfg.Mode == ServerSide && !s.secGotData.Load() {
		// Potential legacy-server degrade; let the slow path decide.
		return nil
	}
	return s.dataPlaneIfReady()
}

// flushBatch runs a batch through the data plane serially and writes
// the whole resealed result in one outbound write. out is the reused
// reseal buffer; the (possibly grown) buffer is returned for reuse.
// Callers flush any pipelined work for the direction first (relayLoop
// does; processForward's callers sit behind the same flush), so the
// gate's committed position advances with the batch.
func (s *mbSession) flushBatch(dir Direction, dp dataPlaneHandler, batch []tls12.RawRecord, out []byte) ([]byte, error) {
	g := s.gate(dir)
	g.flushMu.Lock()
	if gerr := g.err; gerr != nil {
		g.flushMu.Unlock()
		return out, gerr
	}
	g.flushMu.Unlock()
	out, res, err := dp.handleBatch(dir, batch, out[:0])
	g.flushMu.Lock()
	g.sealSeq += uint64(res.appended)
	g.reserved += uint64(res.appended)
	g.flushMu.Unlock()
	s.mb.recordsRekeyed.Add(int64(res.opened))
	s.mb.bytesProcessed.Add(int64(len(out) - res.appended*recordHeaderLen))
	if s.proxySig.Load() && len(out) > 0 {
		s.noteResealed(dir, out, res.appended)
	}
	if len(out) > 0 {
		// Flush even a partially processed batch: the records already
		// resealed consumed sealing sequence numbers, so dropping them
		// would desynchronize the hop and turn any subsequently sealed
		// alert into MAC garbage at the peer.
		conn, mu := s.outbound(dir)
		if werr := s.writeWire(conn, mu, out); err == nil {
			err = werr
		}
	}
	return out, err
}

// handleRecordWire is the per-record slow path. wire is the record's
// original framing, forwarded directly when the record passes through
// unmodified; it aliases the relay's read buffer and must not be
// retained.
func (s *mbSession) handleRecordWire(dir Direction, rec tls12.RawRecord, wire []byte) error {
	switch rec.Type {
	case tls12.TypeEncapsulated:
		if len(rec.Payload) < 1 {
			return errors.New("core: empty Encapsulated record")
		}
		sub := rec.Payload[0]
		if sub == neighborSubchannel && s.neighborMode {
			// Hop-local neighbor handshake traffic: consumed here,
			// never forwarded (each hop has its own subchannel 0).
			if dir == DirClientToServer {
				s.downNPipe.feed(rec.Payload[1:])
			} else {
				s.upNPipe.feed(rec.Payload[1:])
			}
			return nil
		}
		if s.isMine(dir, sub) {
			s.secGotData.Store(true)
			s.secPipe.feed(rec.Payload[1:])
			return nil
		}
		if dir == DirServerToClient {
			s.joinMu.Lock()
			if int(sub) > s.maxSubS2C {
				s.maxSubS2C = int(sub)
			}
			s.joinMu.Unlock()
		}
		return s.forwardWire(dir, wire)

	case tls12.TypeHandshake:
		if dir == DirServerToClient && s.mb.cfg.Mode == ClientSide && s.mbtls {
			if err := s.maybeJoinClientSide(); err != nil {
				return err
			}
		}
		return s.forwardWire(dir, wire)

	case tls12.TypeApplicationData:
		if !s.mbtls || s.degraded.Load() {
			return s.forwardWire(dir, wire)
		}
		if s.mb.cfg.Mode == ServerSide && !s.secGotData.Load() && s.dataPlaneIfReady() == nil {
			// Application data is flowing but the server never spoke
			// on our subchannel: a lenient legacy server skipped the
			// announcement and the handshake proceeded without us
			// (paper §3.4). Degrade to a transparent relay and
			// remember not to announce to this server again.
			s.degraded.Store(true)
			s.notifyEstablished()
			s.mb.markNoAnnounce(s.up.RemoteAddr().String())
			return s.forwardWire(dir, wire)
		}
		dp, err := s.waitDataPlane()
		if err != nil {
			return err
		}
		return s.processForward(dir, dp, rec)

	case tls12.TypeAlert:
		// Before per-hop keys exist, alerts travel end-to-end under
		// the primary session (or in the clear) and are relayed;
		// afterwards they are hop-protected and must be resealed.
		if dp := s.dataPlaneIfReady(); dp != nil {
			return s.processForward(dir, dp, rec)
		}
		if s.mb.cfg.Mode == ServerSide && s.mbtls && dir == DirServerToClient &&
			!s.secGotData.Load() && len(rec.Payload) == 2 && rec.Payload[0] == 2 {
			// A fatal alert from a server that never spoke on our
			// subchannel: a strict legacy endpoint choked on the
			// announcement. Cache before forwarding so a client retry
			// observes the transparent behavior (paper §3.4).
			s.mb.markNoAnnounce(s.up.RemoteAddr().String())
		}
		return s.forwardWire(dir, wire)

	default:
		return s.forwardWire(dir, wire)
	}
}

// isMine reports whether an Encapsulated record on this direction
// belongs to this middlebox's secondary session. Client-side
// middleboxes converse with the client (records arrive client→server);
// server-side middleboxes converse with the server.
func (s *mbSession) isMine(dir Direction, sub uint8) bool {
	s.joinMu.Lock()
	defer s.joinMu.Unlock()
	if !s.mbtls || !s.assigned || sub != s.mySub {
		return false
	}
	if s.mb.cfg.Mode == ClientSide {
		return dir == DirClientToServer
	}
	return dir == DirServerToClient
}

// maybeJoinClientSide self-assigns a subchannel and injects our
// secondary ServerHello when the primary ServerHello first passes
// (paper §3.4: buffer the ServerHello, take the next available
// subchannel ID, inject, then forward).
func (s *mbSession) maybeJoinClientSide() error {
	s.joinMu.Lock()
	if s.assigned {
		s.joinMu.Unlock()
		return nil
	}
	s.mySub = uint8(s.maxSubS2C + 1)
	s.assigned = true
	firstWrite := make(chan struct{})
	s.secPipe = newPipeBuf(func(b []byte) error {
		return s.writeEncapsulated(s.down, &s.downW, b)
	})
	s.secPipe.onFirstWrite = func() { close(firstWrite) }
	s.joinMu.Unlock()

	go s.runSecondary("")
	if s.neighborMode {
		go s.runNeighborHops()
	}

	// Hold the primary ServerHello until our secondary ServerHello is
	// on the wire, so middleboxes closer to the client see our
	// subchannel in use before they self-assign.
	select {
	case <-firstWrite:
		return nil
	case <-time.After(s.mb.cfg.DataPlaneTimeout):
		return errors.New("core: secondary handshake failed to start")
	}
}

// runSecondary performs the middlebox's secondary handshake (always in
// the server role — against the client's reused primary ClientHello on
// the client side, or against a fresh ClientHello from the server on
// the server side), then receives key material and installs the data
// plane.
func (s *mbSession) runSecondary(serverAddr string) {
	cfg := &tls12.Config{
		Certificate:  s.mb.cfg.Certificate,
		CipherSuites: s.mb.cfg.CipherSuites,
		Stopwatch:    s.mb.cfg.Stopwatch,
		KeyShares:    s.mb.cfg.KeyShares,
	}
	if s.mb.cfg.TicketKeys != nil && s.mb.cfg.Mode == ClientSide {
		// Issue and redeem hop tickets under this middlebox's name.
		// Server-side chains are built from anonymous announcements, so
		// the client has no hop ticket to offer them.
		cfg.EnableTickets = true
		cfg.TicketKeys = s.mb.cfg.TicketKeys
		cfg.HopTicketName = s.mb.cfg.Name
	}
	if e := s.mb.cfg.Enclave; e != nil {
		cfg.Quoter = func(reportData []byte) (quote []byte, err error) {
			e.Enter(func(mem enclave.Memory) {
				var q *enclave.Quote
				q, err = mem.Quote(reportData)
				if err == nil {
					quote = q.Marshal()
				}
			})
			return quote, err
		}
	}
	rl := tls12.NewRecordLayer(s.secPipe)
	var conn *tls12.Conn
	if s.mb.cfg.Mode == ClientSide {
		if s.acctMismatch {
			s.refuseAccountability(rl)
			return
		}
		conn = tls12.ServerWithReceivedHello(rl, cfg, s.helloRaw)
	} else {
		// Server-side hops negotiate accountability through the server
		// endpoint's fresh secondary ClientHello; read it here so a
		// mismatch is refused before the handshake commits.
		helloBytes, err := readHelloMessage(rl)
		if err != nil {
			if !s.secGotData.Load() && serverAddr != "" {
				// The server never spoke on our subchannel: a legacy
				// endpoint ignored the announcement.
				s.mb.markNoAnnounce(serverAddr)
			}
			s.setDataPlane(nil, fmt.Errorf("core: secondary handshake: %w", err))
			return
		}
		hello, _ := tls12.ParseClientHello(helloBytes)
		negProxySig := hello != nil && hello.MiddleboxSupport != nil && hello.MiddleboxSupport.ProxySig
		if negProxySig != (s.mb.cfg.Accountability == AccountProxySig) {
			s.refuseAccountability(rl)
			return
		}
		if negProxySig {
			s.proxySig.Store(true)
			s.mb.proxySig.Add(1)
		}
		conn = tls12.ServerWithReceivedHello(rl, cfg, helloBytes)
	}
	if err := conn.Handshake(); err != nil {
		if s.mb.cfg.Mode == ServerSide && !s.secGotData.Load() && serverAddr != "" {
			// The server never spoke on our subchannel: it is a
			// legacy endpoint that ignored (or choked on) the
			// announcement. Remember not to announce again.
			s.mb.markNoAnnounce(serverAddr)
		}
		s.setDataPlane(nil, fmt.Errorf("core: secondary handshake: %w", err))
		return
	}

	if conn.ConnectionState().Resumed {
		s.mb.sessionsResumed.Add(1)
	}

	// Retain the secondary session keys in the vault so the adversary
	// harness can probe what a malicious infrastructure provider
	// would find in host memory.
	if sk, err := conn.ExportSessionKeys(); err == nil {
		s.storeSecret("secondary/client-write", sk.ClientWriteKey)
		s.storeSecret("secondary/server-write", sk.ServerWriteKey)
		sk.Wipe() // the vault cloned what it stored
	}

	if s.neighborMode {
		// Hop keys come from the neighbor handshakes, not from
		// MBTLSKeyMaterial (§4.2 mode); the secondary session's job —
		// identity, attestation, approval — is done.
		return
	}

	kmBytes, err := conn.ReadKeyMaterial()
	if err != nil {
		s.setDataPlane(nil, fmt.Errorf("core: key material: %w", err))
		return
	}
	km, err := parseKeyMaterial(kmBytes)
	secmem.Wipe(kmBytes) // parseKeyMaterial copied the keys out
	if err != nil {
		s.setDataPlane(nil, err)
		return
	}
	defer km.Wipe() // held only until the data plane's cipher states are built
	s.storeSecret("hop/down-c2s", km.Down.C2SKey)
	s.storeSecret("hop/down-c2s-iv", km.Down.C2SIV)
	s.storeSecret("hop/down-s2c", km.Down.S2CKey)
	s.storeSecret("hop/down-s2c-iv", km.Down.S2CIV)
	s.storeSecret("hop/up-c2s", km.Up.C2SKey)
	s.storeSecret("hop/up-c2s-iv", km.Up.C2SIV)
	s.storeSecret("hop/up-s2c", km.Up.S2CKey)
	s.storeSecret("hop/up-s2c-iv", km.Up.S2CIV)

	// Proxysig: the delegation warrant follows the key material on the
	// same subchannel and must be accepted before the data plane goes
	// live — a middlebox never reseals traffic it holds no warrant for.
	if s.proxySig.Load() {
		if err := s.receiveDelegation(conn); err != nil {
			s.setDataPlane(nil, err)
			return
		}
	}

	var proc Processor
	if s.mb.cfg.NewProcessor != nil {
		proc = s.mb.cfg.NewProcessor()
	}
	var dp dataPlaneHandler
	if e := s.mb.cfg.Enclave; e != nil {
		dp, err = installEnclaveDataPlane(e, km, proc)
	} else {
		dp, err = newDataPlane(km, proc)
	}
	s.setDataPlane(dp, err)
	if err == nil && dp != nil && s.proxySig.Load() {
		// Keep the secondary session alive to serve close-time evidence
		// requests; teardown fails the subchannel pipe and unwinds this
		// loop with the goroutine.
		s.serveEvidence(conn)
	}
}

// readHelloMessage assembles the first handshake message from a record
// layer (the fresh ClientHello a server endpoint sends on a
// server-side secondary subchannel), so the middlebox can inspect its
// negotiated accountability mode before committing to the handshake.
func readHelloMessage(rl *tls12.RecordLayer) ([]byte, error) {
	var buf []byte
	for {
		rec, err := rl.ReadRecord()
		if err != nil {
			return nil, err
		}
		if rec.Type != tls12.TypeHandshake {
			return nil, fmt.Errorf("core: expected handshake record, got %s", rec.Type)
		}
		buf = append(buf, rec.Payload...)
		if len(buf) >= 4 {
			n := int(buf[1])<<16 | int(buf[2])<<8 | int(buf[3])
			if len(buf) >= 4+n {
				return buf[:4+n], nil
			}
		}
	}
}

// refuseAccountability declines a secondary session whose endpoint
// negotiated a different accountability mode than this middlebox is
// configured for: a plaintext fatal alert on our subchannel (no
// handshake ran, so there is nothing to seal under), which the
// endpoint's secondary handshake surfaces as a remote alert.
func (s *mbSession) refuseAccountability(rl *tls12.RecordLayer) {
	//nolint:errcheck // best-effort refusal; teardown follows either way
	rl.WriteRecord(tls12.TypeAlert, []byte{byte(tls12.AlertLevelFatal), byte(tls12.AlertAccountabilityMismatch)})
	s.setDataPlane(nil, &tls12.AlertError{Description: tls12.AlertAccountabilityMismatch})
}

// receiveDelegation reads and validates the endpoint's delegation
// warrant (proxysig mode): well-formed, self-signed, addressed to this
// middlebox's certificate key, and within its validity window. A valid
// warrant is stored in the session's vault namespace and acknowledged;
// an invalid one is refused with a descriptive fatal alert.
func (s *mbSession) receiveDelegation(conn *tls12.Conn) error {
	raw, err := conn.ReadKeyMaterial()
	if err != nil {
		return fmt.Errorf("core: delegation: %w", err)
	}
	kind, body, err := parseAcctFrame(raw)
	if err != nil || kind != acctFrameDelegation {
		conn.SendAlert(tls12.AlertBadCertificate)
		return errors.New("core: expected a delegation warrant after key material")
	}
	d, err := certs.ParseDelegation(body)
	if err != nil {
		conn.SendAlert(tls12.AlertBadCertificate)
		return fmt.Errorf("core: delegation: %w", err)
	}
	own, _ := s.mb.cfg.Certificate.PrivateKey.Public().(ed25519.PublicKey)
	if !d.Authorized.Equal(own) {
		conn.SendAlert(tls12.AlertBadCertificate)
		return errors.New("core: delegation authorizes a different key")
	}
	if err := d.ValidAt(time.Now()); err != nil {
		conn.SendAlert(tls12.AlertCertificateExpired)
		return fmt.Errorf("core: delegation: %w", err)
	}
	deleg := append([]byte(nil), body...)
	if f := s.mb.cfg.AccountabilityFaults; f != nil && f.MutateDelegation != nil {
		deleg = f.MutateDelegation(deleg)
	}
	s.storeSecret("acct/delegation", deleg)
	s.evMu.Lock()
	s.delegation = deleg
	s.evC2S = sha256.New()
	s.evS2C = sha256.New()
	s.evMu.Unlock()
	if err := conn.WriteKeyMaterial(acctFrame(acctFrameAck, nil)); err != nil {
		return fmt.Errorf("core: delegation ack: %w", err)
	}
	return nil
}

// serveEvidence answers evidence requests on the retained secondary
// session until the session tears down (which fails the subchannel
// pipe and errors the read).
func (s *mbSession) serveEvidence(conn *tls12.Conn) {
	for {
		raw, err := conn.ReadKeyMaterial()
		if err != nil {
			return
		}
		kind, _, err := parseAcctFrame(raw)
		if err != nil || kind != acctFrameEvidenceReq {
			continue
		}
		blob, err := s.signEvidence()
		if err != nil {
			conn.SendAlert(tls12.AlertInternalError)
			return
		}
		if err := conn.WriteKeyMaterial(acctFrame(acctFrameEvidence, blob)); err != nil {
			return
		}
		s.mb.evidenceSigned.Add(1)
	}
}

// signEvidence snapshots the session's accountability accumulators and
// signs them with the middlebox certificate key.
func (s *mbSession) signEvidence() ([]byte, error) {
	ev := &certs.Evidence{}
	s.evMu.Lock()
	ev.Delegation = append([]byte(nil), s.delegation...)
	if s.evC2S != nil {
		copy(ev.C2SDigest[:], s.evC2S.Sum(nil))
		copy(ev.S2CDigest[:], s.evS2C.Sum(nil))
	}
	ev.C2SRecords = s.evC2SRecords
	ev.S2CRecords = s.evS2CRecords
	s.evMu.Unlock()
	blob, err := certs.SignEvidence(s.mb.cfg.Certificate.PrivateKey, ev)
	if err != nil {
		return nil, err
	}
	if f := s.mb.cfg.AccountabilityFaults; f != nil && f.MutateEvidence != nil {
		blob = f.MutateEvidence(blob)
	}
	return blob, nil
}

// noteResealed feeds resealed output into the proxysig evidence
// accumulators.
func (s *mbSession) noteResealed(dir Direction, out []byte, records int) {
	s.evMu.Lock()
	defer s.evMu.Unlock()
	if s.evC2S == nil {
		return
	}
	if dir == DirClientToServer {
		s.evC2S.Write(out)
		s.evC2SRecords += uint64(records)
	} else {
		s.evS2C.Write(out)
		s.evS2CRecords += uint64(records)
	}
}

// runNeighborHops performs both hop handshakes of the neighbor-keys
// mode — server role toward the downstream neighbor, client role
// toward the upstream one — then installs the data plane from the two
// hop sessions' keys.
func (s *mbSession) runNeighborHops() {
	downCfg := &tls12.Config{
		Certificate:  s.mb.cfg.Certificate,
		CipherSuites: s.mb.cfg.CipherSuites,
		Stopwatch:    s.mb.cfg.Stopwatch,
	}
	upCfg := &tls12.Config{
		CipherSuites: s.mb.cfg.CipherSuites,
		Stopwatch:    s.mb.cfg.Stopwatch,
	}
	if s.mb.cfg.NeighborRoots != nil {
		upCfg.RootCAs = s.mb.cfg.NeighborRoots
	} else {
		upCfg.InsecureSkipVerify = true
	}

	type res struct {
		hop *HopKeys
		err error
	}
	downCh := make(chan res, 1)
	upCh := make(chan res, 1)
	go func() {
		hop, err := runNeighborServer(s.downNPipe, downCfg)
		downCh <- res{hop, err}
	}()
	go func() {
		hop, err := runNeighborClient(s.upNPipe, upCfg)
		upCh <- res{hop, err}
	}()
	down, up := <-downCh, <-upCh
	if down.err != nil {
		s.setDataPlane(nil, down.err)
		return
	}
	if up.err != nil {
		s.setDataPlane(nil, up.err)
		return
	}

	s.storeSecret("hop/down-c2s", down.hop.C2SKey)
	s.storeSecret("hop/down-c2s-iv", down.hop.C2SIV)
	s.storeSecret("hop/down-s2c", down.hop.S2CKey)
	s.storeSecret("hop/down-s2c-iv", down.hop.S2CIV)
	s.storeSecret("hop/up-c2s", up.hop.C2SKey)
	s.storeSecret("hop/up-c2s-iv", up.hop.C2SIV)
	s.storeSecret("hop/up-s2c", up.hop.S2CKey)
	s.storeSecret("hop/up-s2c-iv", up.hop.S2CIV)

	km := &KeyMaterial{Version: tls12.VersionTLS12, Down: *down.hop, Up: *up.hop}
	// Wiping km also clears down.hop and up.hop: the struct copies
	// alias the same key slices.
	defer km.Wipe()
	var proc Processor
	if s.mb.cfg.NewProcessor != nil {
		proc = s.mb.cfg.NewProcessor()
	}
	var dp dataPlaneHandler
	var err error
	if e := s.mb.cfg.Enclave; e != nil {
		dp, err = installEnclaveDataPlane(e, km, proc)
	} else {
		dp, err = newDataPlane(km, proc)
	}
	s.setDataPlane(dp, err)
}

func (s *mbSession) setDataPlane(dp dataPlaneHandler, err error) {
	if dp != nil {
		// Seed the commit gates from the plane's starting sealing
		// sequences before any observer can see the plane (key material
		// carries arbitrary starting sequence numbers).
		s.initGates(dp)
	}
	s.dpMu.Lock()
	if s.dp == nil && s.dpErr == nil {
		s.dp = dp
		s.dpErr = err
		if dp == nil && err == nil {
			s.dpErr = errors.New("core: data plane unavailable")
		}
	}
	installed := s.dp != nil
	s.dpCond.Broadcast()
	s.dpMu.Unlock()
	if installed {
		s.notifyEstablished()
	}
}

// dataPlaneIfReady returns the data plane if installed, without
// blocking.
func (s *mbSession) dataPlaneIfReady() dataPlaneHandler {
	s.dpMu.Lock()
	defer s.dpMu.Unlock()
	return s.dp
}

// waitDataPlane blocks until key material has been installed —
// application data can race ahead of the MBTLSKeyMaterial delivery
// (the False-Start-like case of §3.5).
func (s *mbSession) waitDataPlane() (dataPlaneHandler, error) {
	s.dpMu.Lock()
	defer s.dpMu.Unlock()
	if s.dp == nil && s.dpErr == nil {
		timeout := time.AfterFunc(s.mb.cfg.DataPlaneTimeout, func() {
			s.dpMu.Lock()
			if s.dp == nil && s.dpErr == nil {
				s.dpErr = errors.New("core: timed out waiting for key material")
			}
			s.dpCond.Broadcast()
			s.dpMu.Unlock()
		})
		defer timeout.Stop()
		for s.dp == nil && s.dpErr == nil {
			s.dpCond.Wait()
		}
	}
	if s.dpErr != nil && s.dp == nil {
		return nil, s.dpErr
	}
	return s.dp, nil
}

// processForward runs one protected record through the data plane and
// forwards the resealed result. It is the slow-path (off-batch)
// companion of flushBatch, used for alerts and the False-Start window.
// The per-direction batch slot and reseal buffer are session-owned and
// reused across calls — a session relaying alert-heavy traffic (or a
// long False-Start window) must not pay a pool round-trip per record.
// Each direction is driven by one relay goroutine, so the slots need
// no locking; run releases the buffers at teardown.
func (s *mbSession) processForward(dir Direction, dp dataPlaneHandler, rec tls12.RawRecord) error {
	i := dirIndex(dir)
	if s.fwdOut[i] == nil {
		s.fwdOut[i] = s.mb.bufs.GetRecordBuf()
	}
	s.fwdSlot[i][0] = rec
	var err error
	s.fwdOut[i], err = s.flushBatch(dir, dp, s.fwdSlot[i][:], s.fwdOut[i])
	s.fwdSlot[i][0] = tls12.RawRecord{}
	return err
}
