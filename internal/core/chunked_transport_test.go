package core_test

import (
	"bytes"
	"io"
	"net"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/netsim"
)

// chunkedConn caps every Read at n bytes, simulating the worst-case
// stream segmentation a real TCP transport may deliver: record headers
// split across reads, payloads arriving a few bytes at a time. The
// transport Conn contract promises only stream semantics, so the whole
// session stack must work unchanged on top of this.
type chunkedConn struct {
	net.Conn
	n int
}

func (c *chunkedConn) Read(p []byte) (int, error) {
	if len(p) > c.n {
		p = p[:c.n]
	}
	return c.Conn.Read(p)
}

// TestSessionOverChunkedTransport runs a complete mbTLS session —
// handshake, middlebox join, bidirectional application data — over a
// transport that refuses to deliver more than 3 bytes per Read on
// either endpoint. Every record parser on the path (endpoint record
// layers, the middlebox relay's raw-record reader) must reassemble
// identically to contiguous delivery; this is the integration-level
// counterpart of tls12's FuzzRecordReader differential check.
func TestSessionOverChunkedTransport(t *testing.T) {
	e := newEnv(t)
	mb := e.middlebox(t, "mb.example", core.ClientSide)
	clientEnd, serverEnd := buildChain(mb)
	clientConn := &chunkedConn{Conn: clientEnd, n: 3}
	serverConn := &chunkedConn{Conn: serverEnd, n: 3}

	type acceptResult struct {
		sess *core.Session
		err  error
	}
	acc := make(chan acceptResult, 1)
	go func() {
		sess, err := core.Accept(serverConn, e.serverConfig())
		acc <- acceptResult{sess, err}
	}()

	clientSess, err := core.Dial(clientConn, e.clientConfig())
	if err != nil {
		t.Fatalf("handshake over 3-byte reads: %v", err)
	}
	defer clientSess.Close()
	srv := <-acc
	if srv.err != nil {
		t.Fatalf("accept over 3-byte reads: %v", srv.err)
	}
	defer srv.sess.Close()

	if got := len(clientSess.Middleboxes()); got != 1 {
		t.Fatalf("client sees %d middleboxes, want 1", got)
	}

	// Bidirectional echo with a payload spanning many records' worth of
	// chunked reads.
	msg := bytes.Repeat([]byte("stream-not-records "), 100)
	if _, err := clientSess.Write(msg); err != nil {
		t.Fatalf("client write: %v", err)
	}
	srv.sess.SetReadDeadline(time.Now().Add(10 * time.Second)) //nolint:errcheck
	got := make([]byte, len(msg))
	if _, err := io.ReadFull(srv.sess, got); err != nil {
		t.Fatalf("server read: %v", err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatal("payload corrupted by chunked delivery")
	}
	if _, err := srv.sess.Write(got); err != nil {
		t.Fatalf("server write: %v", err)
	}
	clientSess.SetReadDeadline(time.Now().Add(10 * time.Second)) //nolint:errcheck
	back := make([]byte, len(msg))
	if _, err := io.ReadFull(clientSess, back); err != nil {
		t.Fatalf("client read: %v", err)
	}
	if !bytes.Equal(back, msg) {
		t.Fatal("echo corrupted by chunked delivery")
	}
}

// TestSessionOverChunkedTransportOneByte is the degenerate case: the
// full handshake with every byte delivered alone. Slower, so the
// payload is small; the point is that nothing anywhere assumes it can
// read a header in one call.
func TestSessionOverChunkedTransportOneByte(t *testing.T) {
	if testing.Short() {
		t.Skip("1-byte delivery is slow under -short")
	}
	e := newEnv(t)
	left, right := netsim.Pipe()
	clientConn := &chunkedConn{Conn: left, n: 1}

	type acceptResult struct {
		sess *core.Session
		err  error
	}
	acc := make(chan acceptResult, 1)
	go func() {
		sess, err := core.Accept(right, e.serverConfig())
		acc <- acceptResult{sess, err}
	}()
	clientSess, err := core.Dial(clientConn, e.clientConfig())
	if err != nil {
		t.Fatalf("handshake over 1-byte reads: %v", err)
	}
	defer clientSess.Close()
	srv := <-acc
	if srv.err != nil {
		t.Fatalf("accept: %v", srv.err)
	}
	defer srv.sess.Close()

	msg := []byte("one byte at a time")
	if _, err := clientSess.Write(msg); err != nil {
		t.Fatal(err)
	}
	srv.sess.SetReadDeadline(time.Now().Add(10 * time.Second)) //nolint:errcheck
	got := make([]byte, len(msg))
	if _, err := io.ReadFull(srv.sess, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatalf("got %q, want %q", got, msg)
	}
}
