package core

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/tls12"
)

const testSuite = tls12.TLS_ECDHE_ECDSA_WITH_AES_256_GCM_SHA384

// testDataPlaneKit builds a data plane plus cipher states playing the
// adjacent hops: src seals what the plane opens on hop A, sink opens
// what it reseals onto hop B.
func testDataPlaneKit(t *testing.T, proc Processor) (dp *dataPlane, src, sink *tls12.CipherState) {
	t.Helper()
	hopA, err := GenerateHopKeys(testSuite)
	if err != nil {
		t.Fatal(err)
	}
	hopB, err := GenerateHopKeys(testSuite)
	if err != nil {
		t.Fatal(err)
	}
	km := &KeyMaterial{Version: tls12.VersionTLS12, Down: *hopA, Up: *hopB}
	dp, err = newDataPlane(km, proc)
	if err != nil {
		t.Fatal(err)
	}
	if src, err = tls12.NewCipherState(testSuite, hopA.C2SKey, hopA.C2SIV, 0); err != nil {
		t.Fatal(err)
	}
	if sink, err = tls12.NewCipherState(testSuite, hopB.C2SKey, hopB.C2SIV, 0); err != nil {
		t.Fatal(err)
	}
	return dp, src, sink
}

// parseWire splits handleBatch output back into raw records.
func parseWire(t *testing.T, wire []byte) []tls12.RawRecord {
	t.Helper()
	var recs []tls12.RawRecord
	for len(wire) > 0 {
		typ, length, err := tls12.ParseRecordHeader(wire)
		if err != nil {
			t.Fatal(err)
		}
		recs = append(recs, tls12.RawRecord{
			Type:    typ,
			Payload: wire[tls12.RecordHeaderLen : tls12.RecordHeaderLen+length],
		})
		wire = wire[tls12.RecordHeaderLen+length:]
	}
	return recs
}

// TestDataPlaneEmptyAppDataResealed: a zero-length application-data
// record (legal TLS, e.g. as a traffic-analysis countermeasure) must be
// resealed and forwarded, not silently dropped — dropping it would
// desynchronize the hop sequence numbers.
func TestDataPlaneEmptyAppDataResealed(t *testing.T) {
	dp, src, sink := testDataPlaneKit(t, nil)
	rec := tls12.RawRecord{
		Type:    tls12.TypeApplicationData,
		Payload: src.Seal(tls12.TypeApplicationData, nil),
	}
	out, res, err := dp.handleBatch(DirClientToServer, []tls12.RawRecord{rec}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.appended != 1 || res.opened != 1 {
		t.Fatalf("empty app-data record yielded %+v, want 1 appended, 1 opened", res)
	}
	recs := parseWire(t, out)
	plain, err := sink.OpenInPlace(recs[0].Type, recs[0].Payload)
	if err != nil {
		t.Fatal(err)
	}
	if len(plain) != 0 {
		t.Fatalf("resealed payload is %d bytes, want 0", len(plain))
	}
}

// TestDataPlaneBatchMatchesSingle: processing N records as one batch
// must produce byte-identical output to N single-record batches.
func TestDataPlaneBatchMatchesSingle(t *testing.T) {
	payloads := [][]byte{
		[]byte("first"),
		bytes.Repeat([]byte{0xAB}, 5000),
		{},
		[]byte("last"),
	}
	sealBatch := func(src *tls12.CipherState) []tls12.RawRecord {
		recs := make([]tls12.RawRecord, len(payloads))
		for i, p := range payloads {
			recs[i] = tls12.RawRecord{
				Type:    tls12.TypeApplicationData,
				Payload: src.Seal(tls12.TypeApplicationData, p),
			}
		}
		return recs
	}

	dpA, srcA, _ := testDataPlaneKit(t, nil)
	batchOut, batchRes, err := dpA.handleBatch(DirClientToServer, sealBatch(srcA), nil)
	if err != nil {
		t.Fatal(err)
	}

	// A second plane driven record by record must emit the same record
	// shapes (keys differ, so bytes can't be compared directly).
	dp2, src2, _ := testDataPlaneKit(t, nil)
	var singleOut []byte
	var singleRes batchResult
	for _, rec := range sealBatch(src2) {
		var res batchResult
		singleOut, res, err = dp2.handleBatch(DirClientToServer, []tls12.RawRecord{rec}, singleOut)
		if err != nil {
			t.Fatal(err)
		}
		singleRes.appended += res.appended
		singleRes.opened += res.opened
	}
	if batchRes != singleRes {
		t.Fatalf("batch accounting %+v, singles %+v", batchRes, singleRes)
	}
	// Keys differ between the two kits, so compare structure and
	// decrypted contents rather than raw bytes.
	br := parseWire(t, batchOut)
	sr := parseWire(t, singleOut)
	if len(br) != len(sr) {
		t.Fatalf("batch %d records vs singles %d", len(br), len(sr))
	}
	for i := range br {
		if br[i].Type != sr[i].Type || len(br[i].Payload) != len(sr[i].Payload) {
			t.Fatalf("record %d shape differs: %v/%d vs %v/%d",
				i, br[i].Type, len(br[i].Payload), sr[i].Type, len(sr[i].Payload))
		}
	}
}

// TestDataPlaneProcessorExpansion: a processor growing a record beyond
// the fragment limit forces re-fragmentation into multiple records,
// all of which must open in order at the sink.
func TestDataPlaneProcessorExpansion(t *testing.T) {
	grow := ProcessorFunc(func(dir Direction, chunk []byte) ([]byte, error) {
		return bytes.Repeat(chunk, 3), nil
	})
	dp, src, sink := testDataPlaneKit(t, grow)
	payload := bytes.Repeat([]byte{0x42}, 6000) // ×3 = 18000 > maxPlaintext
	rec := tls12.RawRecord{
		Type:    tls12.TypeApplicationData,
		Payload: src.Seal(tls12.TypeApplicationData, payload),
	}
	out, res, err := dp.handleBatch(DirClientToServer, []tls12.RawRecord{rec}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.appended != 2 || res.opened != 1 {
		t.Fatalf("18000-byte output yielded %+v, want 2 appended, 1 opened", res)
	}
	var got []byte
	for _, r := range parseWire(t, out) {
		plain, err := sink.OpenInPlace(r.Type, r.Payload)
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, plain...)
	}
	if !bytes.Equal(got, bytes.Repeat(payload, 3)) {
		t.Fatal("expanded payload corrupted")
	}
}

// TestDataPlaneMACFailure: a record sealed under the wrong key must
// kill the batch with the hop-MAC error (path integrity, P4).
func TestDataPlaneMACFailure(t *testing.T) {
	dp, src, _ := testDataPlaneKit(t, nil)
	wrongKeys, err := GenerateHopKeys(testSuite)
	if err != nil {
		t.Fatal(err)
	}
	wrongSrc, err := tls12.NewCipherState(testSuite, wrongKeys.C2SKey, wrongKeys.C2SIV, 0)
	if err != nil {
		t.Fatal(err)
	}
	good := tls12.RawRecord{
		Type:    tls12.TypeApplicationData,
		Payload: src.Seal(tls12.TypeApplicationData, []byte("ok")),
	}
	bad := tls12.RawRecord{
		Type:    tls12.TypeApplicationData,
		Payload: wrongSrc.Seal(tls12.TypeApplicationData, []byte("evil")),
	}
	_, res, err := dp.handleBatch(DirClientToServer, []tls12.RawRecord{good, bad}, nil)
	if err == nil || !strings.Contains(err.Error(), "hop MAC check failed") {
		t.Fatalf("err = %v", err)
	}
	if res.opened != 1 || res.appended != 1 {
		t.Fatalf("partial-batch accounting %+v, want 1 opened, 1 appended", res)
	}
}
