// Package goleak is the repo's dependency-free goroutine-leak
// accounting, extracted from the copies that grew in the core, netsim,
// and sessionhost test suites. The model is deliberately simple —
// snapshot runtime.NumGoroutine before the work, poll until the count
// returns to the snapshot after it — because the tests that use it
// create and tear down whole session chains, where "the count came
// back" is exactly the property under test (no relay, mux, drain, or
// watchdog goroutine may outlive its session).
//
// Polling with a deadline, rather than comparing counts immediately,
// is what makes the accounting stable under -race and on loaded
// machines: teardown goroutines are unblocked asynchronously (a closed
// transport errors out a parked reader), so the count decays rather
// than dropping atomically. On timeout the full stack dump of every
// live goroutine is reported, which names the leaker directly.
package goleak

import (
	"runtime"
	"testing"
	"time"
)

// defaultWait bounds how long Wait polls before declaring a leak.
const defaultWait = 5 * time.Second

// Base snapshots the current goroutine count. Take it before starting
// the goroutine-spawning work under test.
func Base() int { return runtime.NumGoroutine() }

// Check snapshots the goroutine count now and registers a cleanup that
// fails the test if the count has not returned to the snapshot by the
// end of the test. Use it as the first line of a test:
//
//	func TestX(t *testing.T) {
//		goleak.Check(t)
//		...
//	}
//
// Tests that must assert the count mid-test (e.g. between matrix
// cases) use Base + Wait directly instead.
func Check(t testing.TB) {
	t.Helper()
	base := Base()
	t.Cleanup(func() { Wait(t, base) })
}

// Wait polls until the goroutine count returns to base, failing the
// test with a full stack dump if it does not within 5 seconds.
func Wait(t testing.TB, base int) {
	t.Helper()
	deadline := time.Now().Add(defaultWait)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= base {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	buf := make([]byte, 1<<20)
	n := runtime.Stack(buf, true)
	t.Fatalf("goroutines leaked: %d running, want <= %d\n%s",
		runtime.NumGoroutine(), base, buf[:n])
}
