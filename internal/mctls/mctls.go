// Package mctls implements "mcTLS-lite", a scoped executable model of
// Multi-Context TLS (Naylor et al., SIGCOMM 2015) — the paper's §2.2
// comparison point offering fine-grained access control. It exists so
// the design-space report (paper §2) can back the mcTLS column with
// running code rather than citations. It is not a full mcTLS stack:
// the end-to-end channel establishment is assumed (the paper's mbTLS
// implementation plays that role elsewhere in this repo), and this
// package models exactly the properties §2.2 discusses:
//
//   - Contexts: the data stream is split into contexts (e.g., HTTP
//     headers vs. bodies), each encrypted and MACed under its own keys.
//   - RW/RO/None access control: middleboxes receive, per context, the
//     read keys, the read+write keys, or nothing [Data access:
//     RW/RO/None]. A read-only middlebox that modifies data is caught
//     by the writer MAC; a no-access middlebox cannot read at all.
//   - Both-endpoint authorization: every context key is derived from
//     key shares contributed by *both* endpoints, so "a middlebox only
//     gains access if both endpoints agree" [Authorization: both
//     endpoints] — and, as §2.2 notes, this same mechanism is what
//     precludes legacy endpoints [Legacy: both upgrade].
//
// The record protection follows mcTLS's triple-MAC design: a context
// record carries an AEAD ciphertext under the context's read key plus
// MACs under the writer key and the endpoint key, so endpoints can
// distinguish "modified by an authorized writer" from "modified by a
// reader or third party".
package mctls

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/hmac"
	"crypto/rand"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"repro/internal/secmem"
)

// Access is a middlebox's permission level for one context.
type Access int

// Access levels (paper §2.1 "Granularity of Data Access":
// RW/RO/None).
const (
	None Access = iota
	ReadOnly
	ReadWrite
)

// String names the access level.
func (a Access) String() string {
	switch a {
	case ReadWrite:
		return "read-write"
	case ReadOnly:
		return "read-only"
	}
	return "none"
}

// ContextID identifies a data context (e.g., 1 = HTTP headers,
// 2 = HTTP body).
type ContextID uint8

// shareLen is the length of each endpoint's key-share contribution.
const shareLen = 32

// KeyShare is one endpoint's contribution to a context's keys. Both
// endpoints' shares are required to derive any key — this is the
// mechanism behind mcTLS's both-endpoint authorization.
type KeyShare struct {
	Context ContextID
	Share   [shareLen]byte
}

// NewKeyShare draws a fresh random share for a context.
func NewKeyShare(ctx ContextID) (*KeyShare, error) {
	ks := &KeyShare{Context: ctx}
	if _, err := io.ReadFull(rand.Reader, ks.Share[:]); err != nil {
		return nil, err
	}
	return ks, nil
}

// ContextKeys are the derived keys for one context.
type ContextKeys struct {
	Context ContextID
	// readKey decrypts context data (and MACs it for readers).
	readKey []byte
	// writeKey MACs legitimate modifications; held by endpoints and
	// read-write middleboxes only.
	writeKey []byte
	// endpointKey MACs the endpoints' own writes; never given to any
	// middlebox.
	endpointKey []byte
}

// deriveKey expands the two shares into one labeled key.
func deriveKey(label string, ctx ContextID, clientShare, serverShare *KeyShare) []byte {
	h := hmac.New(sha256.New, append(clientShare.Share[:], serverShare.Share[:]...))
	h.Write([]byte(label))
	h.Write([]byte{byte(ctx)})
	return h.Sum(nil)
}

// DeriveContextKeys combines both endpoints' shares. Either share
// alone yields nothing: authorization requires both endpoints.
func DeriveContextKeys(clientShare, serverShare *KeyShare) (*ContextKeys, error) {
	if clientShare == nil || serverShare == nil {
		return nil, errors.New("mctls: both endpoint shares are required (both-endpoint authorization)")
	}
	if clientShare.Context != serverShare.Context {
		return nil, fmt.Errorf("mctls: share context mismatch: %d vs %d", clientShare.Context, serverShare.Context)
	}
	ctx := clientShare.Context
	return &ContextKeys{
		Context:     ctx,
		readKey:     deriveKey("mctls read", ctx, clientShare, serverShare),
		writeKey:    deriveKey("mctls write", ctx, clientShare, serverShare),
		endpointKey: deriveKey("mctls endpoint", ctx, clientShare, serverShare),
	}, nil
}

// Wipe zeroizes the context keys. Grant returns views aliasing these
// slices, so wiping the endpoint's ContextKeys also revokes every
// outstanding grant derived from it.
func (ck *ContextKeys) Wipe() {
	if ck == nil {
		return
	}
	secmem.WipeAll(ck.readKey, ck.writeKey, ck.endpointKey)
	ck.readKey, ck.writeKey, ck.endpointKey = nil, nil, nil
}

// Grant extracts the key material a middlebox with the given access
// receives. None yields nil.
func (ck *ContextKeys) Grant(a Access) *ContextKeys {
	switch a {
	case ReadWrite:
		return &ContextKeys{Context: ck.Context, readKey: ck.readKey, writeKey: ck.writeKey}
	case ReadOnly:
		return &ContextKeys{Context: ck.Context, readKey: ck.readKey}
	}
	return nil
}

// CanRead reports whether these keys permit decryption.
func (ck *ContextKeys) CanRead() bool { return ck != nil && ck.readKey != nil }

// CanWrite reports whether these keys permit authorized modification.
func (ck *ContextKeys) CanWrite() bool { return ck != nil && ck.writeKey != nil }

// Record is one protected mcTLS-lite context record.
type Record struct {
	Context ContextID
	Seq     uint64
	// Ciphertext is nonce||AEAD(payload) under the read key.
	Ciphertext []byte
	// WriterMAC authenticates the ciphertext under the write key: any
	// entity holding read access but not write access cannot produce
	// it, so endpoints detect modifications by read-only middleboxes.
	WriterMAC []byte
	// EndpointMAC authenticates under the endpoint key; it survives
	// only if no middlebox (of any permission) modified the record,
	// telling endpoints whether data is endpoint-original.
	EndpointMAC []byte
}

const macLen = sha256.Size

func mac(key []byte, ctx ContextID, seq uint64, ciphertext []byte) []byte {
	h := hmac.New(sha256.New, key)
	var hdr [9]byte
	hdr[0] = byte(ctx)
	binary.BigEndian.PutUint64(hdr[1:], seq)
	h.Write(hdr[:])
	h.Write(ciphertext)
	return h.Sum(nil)
}

func (ck *ContextKeys) aead() (cipher.AEAD, error) {
	block, err := aes.NewCipher(ck.readKey[:32])
	if err != nil {
		return nil, err
	}
	return cipher.NewGCM(block)
}

// Seal protects payload as an endpoint: encrypted under the read key,
// MACed under both the write and endpoint keys.
func (ck *ContextKeys) Seal(seq uint64, payload []byte) (*Record, error) {
	if !ck.CanRead() || !ck.CanWrite() || ck.endpointKey == nil {
		return nil, errors.New("mctls: sealing requires full endpoint keys")
	}
	ct, err := ck.encrypt(seq, payload)
	if err != nil {
		return nil, err
	}
	return &Record{
		Context:     ck.Context,
		Seq:         seq,
		Ciphertext:  ct,
		WriterMAC:   mac(ck.writeKey, ck.Context, seq, ct),
		EndpointMAC: mac(ck.endpointKey, ck.Context, seq, ct),
	}, nil
}

func (ck *ContextKeys) encrypt(seq uint64, payload []byte) ([]byte, error) {
	aead, err := ck.aead()
	if err != nil {
		return nil, err
	}
	nonce := make([]byte, aead.NonceSize())
	binary.BigEndian.PutUint64(nonce[4:], seq)
	if _, err := io.ReadFull(rand.Reader, nonce[:4]); err != nil {
		return nil, err
	}
	return aead.Seal(nonce, nonce, payload, []byte{byte(ck.Context)}), nil
}

// Open decrypts a record with read access, verifying the writer MAC.
func (ck *ContextKeys) Open(rec *Record) ([]byte, error) {
	if !ck.CanRead() {
		return nil, errors.New("mctls: no read access to this context")
	}
	if ck.CanWrite() {
		want := mac(ck.writeKey, rec.Context, rec.Seq, rec.Ciphertext)
		if !hmac.Equal(want, rec.WriterMAC) {
			return nil, errors.New("mctls: writer MAC invalid (unauthorized modification)")
		}
	}
	aead, err := ck.aead()
	if err != nil {
		return nil, err
	}
	if len(rec.Ciphertext) < aead.NonceSize() {
		return nil, errors.New("mctls: short ciphertext")
	}
	nonce := rec.Ciphertext[:aead.NonceSize()]
	payload, err := aead.Open(nil, nonce, rec.Ciphertext[aead.NonceSize():], []byte{byte(rec.Context)})
	if err != nil {
		return nil, errors.New("mctls: decryption failed")
	}
	return payload, nil
}

// Rewrite replaces a record's payload as a read-write middlebox: the
// ciphertext and writer MAC are regenerated, but the endpoint MAC
// cannot be (the middlebox lacks the endpoint key), so endpoints can
// tell the data is no longer endpoint-original.
func (ck *ContextKeys) Rewrite(rec *Record, payload []byte) (*Record, error) {
	if !ck.CanWrite() {
		return nil, errors.New("mctls: no write access to this context")
	}
	ct, err := ck.encrypt(rec.Seq, payload)
	if err != nil {
		return nil, err
	}
	return &Record{
		Context:    rec.Context,
		Seq:        rec.Seq,
		Ciphertext: ct,
		WriterMAC:  mac(ck.writeKey, rec.Context, rec.Seq, ct),
		// EndpointMAC deliberately absent: only endpoints hold that key.
	}, nil
}

// VerifyEndpointOriginal reports whether the record is exactly as an
// endpoint produced it (no middlebox modified it, authorized or not).
func (ck *ContextKeys) VerifyEndpointOriginal(rec *Record) bool {
	if ck.endpointKey == nil || len(rec.EndpointMAC) != macLen {
		return false
	}
	return hmac.Equal(mac(ck.endpointKey, rec.Context, rec.Seq, rec.Ciphertext), rec.EndpointMAC)
}
