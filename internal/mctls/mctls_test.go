package mctls

import (
	"bytes"
	"testing"
)

// session derives full endpoint keys for one context.
func session(t *testing.T, ctx ContextID) (*ContextKeys, *KeyShare, *KeyShare) {
	t.Helper()
	cs, err := NewKeyShare(ctx)
	if err != nil {
		t.Fatal(err)
	}
	ss, err := NewKeyShare(ctx)
	if err != nil {
		t.Fatal(err)
	}
	keys, err := DeriveContextKeys(cs, ss)
	if err != nil {
		t.Fatal(err)
	}
	return keys, cs, ss
}

func TestSealOpenRoundTrip(t *testing.T) {
	keys, _, _ := session(t, 1)
	rec, err := keys.Seal(0, []byte("context-1 payload"))
	if err != nil {
		t.Fatal(err)
	}
	got, err := keys.Open(rec)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "context-1 payload" {
		t.Fatalf("payload = %q", got)
	}
	if !keys.VerifyEndpointOriginal(rec) {
		t.Fatal("fresh record not endpoint-original")
	}
}

// TestBothEndpointAuthorization: a single endpoint's share derives
// nothing — the paper's [Authorization: both endpoints] cell.
func TestBothEndpointAuthorization(t *testing.T) {
	cs, err := NewKeyShare(1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DeriveContextKeys(cs, nil); err == nil {
		t.Fatal("keys derived from a single endpoint's share")
	}
	if _, err := DeriveContextKeys(nil, cs); err == nil {
		t.Fatal("keys derived from a single endpoint's share")
	}
	// Different shares yield different keys (no share, no access).
	keysA, _, _ := session(t, 1)
	keysB, _, _ := session(t, 1)
	recA, _ := keysA.Seal(0, []byte("secret"))
	if _, err := keysB.Open(recA); err == nil {
		t.Fatal("keys from unrelated shares decrypted the record")
	}
}

// TestReadOnlyMiddlebox: an RO grant can read but any modification is
// detected by write-capable parties — the cryptographic guarantee §2.2
// credits to mcTLS ("its access control mechanisms provide
// cryptographic guarantees that the middlebox will not modify data").
func TestReadOnlyMiddlebox(t *testing.T) {
	keys, _, _ := session(t, 1)
	ro := keys.Grant(ReadOnly)
	if !ro.CanRead() || ro.CanWrite() {
		t.Fatalf("RO grant: read=%v write=%v", ro.CanRead(), ro.CanWrite())
	}

	rec, _ := keys.Seal(0, []byte("read me, don't touch me"))
	got, err := ro.Open(rec)
	if err != nil {
		t.Fatalf("RO middlebox cannot read: %v", err)
	}
	if string(got) != "read me, don't touch me" {
		t.Fatal("RO read corrupted")
	}

	// The RO middlebox forges a modified record as best it can: it has
	// the read key, so it can re-encrypt — but it cannot produce the
	// writer MAC.
	forgedCT, err := ro.encrypt(0, []byte("tampered by RO middlebox!!"))
	if err != nil {
		t.Fatal(err)
	}
	forged := &Record{Context: 1, Seq: 0, Ciphertext: forgedCT, WriterMAC: rec.WriterMAC}
	if _, err := keys.Open(forged); err == nil {
		t.Fatal("endpoint accepted a record modified by a read-only middlebox")
	}
}

// TestReadWriteMiddlebox: an RW grant can legitimately rewrite; the
// endpoint accepts the rewrite but can tell it is no longer
// endpoint-original.
func TestReadWriteMiddlebox(t *testing.T) {
	keys, _, _ := session(t, 2)
	rw := keys.Grant(ReadWrite)
	rec, _ := keys.Seal(7, []byte("original"))

	payload, err := rw.Open(rec)
	if err != nil {
		t.Fatal(err)
	}
	rewritten, err := rw.Rewrite(rec, append(payload, []byte(" +compressed")...))
	if err != nil {
		t.Fatal(err)
	}
	got, err := keys.Open(rewritten)
	if err != nil {
		t.Fatalf("endpoint rejected an authorized rewrite: %v", err)
	}
	if string(got) != "original +compressed" {
		t.Fatalf("rewritten payload = %q", got)
	}
	if keys.VerifyEndpointOriginal(rewritten) {
		t.Fatal("rewritten record still claims endpoint originality")
	}
}

// TestNoAccessMiddlebox: a None grant yields nothing at all.
func TestNoAccessMiddlebox(t *testing.T) {
	keys, _, _ := session(t, 3)
	none := keys.Grant(None)
	if none != nil {
		t.Fatal("None grant returned key material")
	}
	var nilKeys *ContextKeys
	if nilKeys.CanRead() || nilKeys.CanWrite() {
		t.Fatal("nil keys claim access")
	}
}

// TestContextIsolation: keys for one context cannot open another's
// records even within the same session shares.
func TestContextIsolation(t *testing.T) {
	csHeaders, _ := NewKeyShare(1)
	ssHeaders, _ := NewKeyShare(1)
	csBody, _ := NewKeyShare(2)
	ssBody, _ := NewKeyShare(2)
	headers, err := DeriveContextKeys(csHeaders, ssHeaders)
	if err != nil {
		t.Fatal(err)
	}
	body, err := DeriveContextKeys(csBody, ssBody)
	if err != nil {
		t.Fatal(err)
	}
	rec, _ := headers.Seal(0, []byte("header data"))
	if _, err := body.Open(rec); err == nil {
		t.Fatal("body-context keys opened a headers-context record")
	}
	if _, err := DeriveContextKeys(csHeaders, ssBody); err == nil {
		t.Fatal("cross-context shares combined")
	}
}

// TestRewriteRequiresWriteAccess: Rewrite with RO keys fails.
func TestRewriteRequiresWriteAccess(t *testing.T) {
	keys, _, _ := session(t, 1)
	ro := keys.Grant(ReadOnly)
	rec, _ := keys.Seal(0, []byte("x"))
	if _, err := ro.Rewrite(rec, []byte("y")); err == nil {
		t.Fatal("read-only grant rewrote a record")
	}
}

func TestTamperedCiphertextRejected(t *testing.T) {
	keys, _, _ := session(t, 1)
	rec, _ := keys.Seal(0, bytes.Repeat([]byte{0xAA}, 64))
	rec.Ciphertext[20] ^= 1
	if _, err := keys.Open(rec); err == nil {
		t.Fatal("tampered ciphertext accepted")
	}
}

func TestAccessString(t *testing.T) {
	if None.String() == ReadOnly.String() || ReadOnly.String() == ReadWrite.String() {
		t.Fatal("access levels stringify ambiguously")
	}
}
