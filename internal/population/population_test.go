package population

import (
	"testing"

	"repro/internal/certs"
	"repro/internal/tls12"
)

func TestPopulationCountsMatchPaper(t *testing.T) {
	sites := Sites()
	if len(sites) != HTTPSSites {
		t.Fatalf("population size = %d, want %d", len(sites), HTTPSSites)
	}
	counts := map[Outcome]int{}
	for _, s := range sites {
		counts[s.Class]++
	}
	want := map[Outcome]int{
		OutcomeSuccess:  ExpectSuccess,
		OutcomeBadCert:  ExpectBadCert,
		OutcomeNoCipher: ExpectNoCipher,
		OutcomeRedirect: ExpectRedirect,
		OutcomeUnknown:  ExpectUnknown,
	}
	for outcome, n := range want {
		if counts[outcome] != n {
			t.Errorf("%s: %d sites, want %d", outcome, counts[outcome], n)
		}
	}
}

func TestPopulationDeterministic(t *testing.T) {
	a, b := Sites(), Sites()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("site %d differs across generations: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestFailuresSpreadAcrossRanks(t *testing.T) {
	// The failure classes must not cluster at the end of the list.
	sites := Sites()
	firstHalfFailures := 0
	for _, s := range sites[:len(sites)/2] {
		if s.Class != OutcomeSuccess {
			firstHalfFailures++
		}
	}
	if firstHalfFailures < 10 {
		t.Fatalf("only %d failures in the first half; classes are clustered", firstHalfFailures)
	}
}

func TestMaterializeClasses(t *testing.T) {
	ca, err := certs.NewCA("pop root")
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		class Outcome
		check func(*Behavior) bool
		desc  string
	}{
		{OutcomeSuccess, func(b *Behavior) bool {
			return b.Certificate != nil && !b.Broken && b.Redirect == "" && len(b.CipherSuites) == 2
		}, "plain working site"},
		{OutcomeNoCipher, func(b *Behavior) bool {
			return len(b.CipherSuites) == 1 && b.CipherSuites[0] == tls12.TLS_ECDHE_ECDSA_WITH_AES_128_GCM_SHA256
		}, "AES-128-only site"},
		{OutcomeRedirect, func(b *Behavior) bool { return b.Redirect != "" }, "redirecting site"},
		{OutcomeUnknown, func(b *Behavior) bool { return b.Broken }, "broken site"},
	}
	for _, c := range cases {
		b, err := Materialize(ca, Site{Rank: 1, Name: "test.example", Class: c.class})
		if err != nil {
			t.Fatalf("%s: %v", c.desc, err)
		}
		if !c.check(b) {
			t.Errorf("%s: behavior %+v does not match class", c.desc, b)
		}
	}
}

func TestMaterializeBadCertVariants(t *testing.T) {
	ca, err := certs.NewCA("pop root")
	if err != nil {
		t.Fatal(err)
	}
	// Even ranks: expired (chain rooted at ca); odd ranks: untrusted.
	expired, err := Materialize(ca, Site{Rank: 2, Name: "even.example", Class: OutcomeBadCert})
	if err != nil {
		t.Fatal(err)
	}
	if len(expired.Certificate.Chain) < 2 {
		t.Fatal("expired-cert site should chain to the CA")
	}
	selfSigned, err := Materialize(ca, Site{Rank: 3, Name: "odd.example", Class: OutcomeBadCert})
	if err != nil {
		t.Fatal(err)
	}
	if len(selfSigned.Certificate.Chain) != 1 {
		t.Fatal("untrusted-cert site should present a bare leaf")
	}
}
