// Package population synthesizes the web-site population of the
// paper's legacy-interoperability experiment (§5.1): fetching the root
// document of the Alexa top-500's 385 HTTPS sites through an mbTLS
// client and middlebox. The paper's observed failure mix is reproduced
// deterministically:
//
//	308 fetched successfully
//	 19 invalid or expired certificates
//	 40 without AES-256-GCM (the prototype's only suite)
//	 13 redirects the SOCKS implementation mishandled
//	  5 unknown failures
//
// Each synthetic site is an unmodified legacy tls12 server configured
// to produce its class's behavior through the same client code path a
// real deployment would exercise.
package population

import (
	"fmt"

	"repro/internal/certs"
	"repro/internal/tls12"
)

// Outcome classifies a fetch attempt, mirroring §5.1's breakdown.
type Outcome string

// Outcomes.
const (
	OutcomeSuccess  Outcome = "success"
	OutcomeBadCert  Outcome = "invalid or expired certificate"
	OutcomeNoCipher Outcome = "no AES-256-GCM support"
	OutcomeRedirect Outcome = "mishandled redirect"
	OutcomeUnknown  Outcome = "unknown failure"
	OutcomeNotHTTPS Outcome = "no HTTPS"
)

// Paper's §5.1 counts.
const (
	TotalAlexa     = 500
	HTTPSSites     = 385
	ExpectSuccess  = 308
	ExpectBadCert  = 19
	ExpectNoCipher = 40
	ExpectRedirect = 13
	ExpectUnknown  = 5
)

// Site is one synthetic HTTPS site.
type Site struct {
	// Rank is the site's Alexa-style rank (1-based).
	Rank int
	// Name is the site hostname.
	Name string
	// Class is the behavior this site exhibits.
	Class Outcome
}

// Behavior materializes the site's server-side configuration.
type Behavior struct {
	// Certificate presented by the server.
	Certificate *tls12.Certificate
	// CipherSuites offered by the server.
	CipherSuites []uint16
	// Redirect, if non-empty, makes the root document a 302 to an
	// external host (which the experiment's simple proxy mishandles,
	// as the paper's SOCKS implementation did).
	Redirect string
	// Broken makes the server reset the connection mid-handshake (the
	// "unknown failure" class).
	Broken bool
	// Body is the root document.
	Body []byte
}

// Sites generates the deterministic 385-site population. The class
// assignment cycles through ranks so failures are spread across the
// list as they were in the wild.
func Sites() []Site {
	classes := make([]Outcome, 0, HTTPSSites)
	for i := 0; i < ExpectSuccess; i++ {
		classes = append(classes, OutcomeSuccess)
	}
	for i := 0; i < ExpectBadCert; i++ {
		classes = append(classes, OutcomeBadCert)
	}
	for i := 0; i < ExpectNoCipher; i++ {
		classes = append(classes, OutcomeNoCipher)
	}
	for i := 0; i < ExpectRedirect; i++ {
		classes = append(classes, OutcomeRedirect)
	}
	for i := 0; i < ExpectUnknown; i++ {
		classes = append(classes, OutcomeUnknown)
	}
	// Deterministic interleave: stride through the class list with a
	// multiplier coprime to its length so classes spread over ranks.
	n := len(classes)
	sites := make([]Site, n)
	for i := 0; i < n; i++ {
		j := (i * 211) % n
		sites[i] = Site{
			Rank:  i + 1,
			Name:  fmt.Sprintf("site%03d.example", i+1),
			Class: classes[j],
		}
	}
	return sites
}

// Materialize builds the server-side behavior for a site under the
// given CA.
func Materialize(ca *certs.CA, s Site) (*Behavior, error) {
	b := &Behavior{
		CipherSuites: []uint16{
			tls12.TLS_ECDHE_ECDSA_WITH_AES_256_GCM_SHA384,
			tls12.TLS_ECDHE_ECDSA_WITH_AES_128_GCM_SHA256,
		},
		Body: []byte(fmt.Sprintf("<html><body>%s root document</body></html>", s.Name)),
	}
	var err error
	switch s.Class {
	case OutcomeBadCert:
		// Half expired, half untrusted — the two §5.1 sub-classes.
		if s.Rank%2 == 0 {
			b.Certificate, err = ca.IssueExpired(s.Name, []string{s.Name})
		} else {
			b.Certificate, err = certs.SelfSigned(s.Name, []string{s.Name})
		}
	case OutcomeNoCipher:
		// Site supports only AES-128-GCM; the prototype client is
		// configured AES-256-GCM-only, so negotiation fails.
		b.CipherSuites = []uint16{tls12.TLS_ECDHE_ECDSA_WITH_AES_128_GCM_SHA256}
		b.Certificate, err = ca.Issue(s.Name, []string{s.Name}, nil)
	case OutcomeRedirect:
		b.Redirect = fmt.Sprintf("https://www.%s/", s.Name)
		b.Certificate, err = ca.Issue(s.Name, []string{s.Name}, nil)
	case OutcomeUnknown:
		b.Broken = true
		b.Certificate, err = ca.Issue(s.Name, []string{s.Name}, nil)
	default:
		b.Certificate, err = ca.Issue(s.Name, []string{s.Name}, nil)
	}
	return b, err
}
