package analysis

import (
	"go/ast"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// loadEngineFixture builds the interprocedural engine over the
// summaryengine fixture package.
func loadEngineFixture(t *testing.T) (*Engine, *Package) {
	t.Helper()
	pkg, err := LoadDir(filepath.Join("testdata", "src", "summaryengine"))
	if err != nil {
		t.Fatalf("LoadDir: %v", err)
	}
	return NewEngine([]*Package{pkg}), pkg
}

// funcByName finds a module function's FuncInfo by bare name.
func funcByName(t *testing.T, e *Engine, name string) *FuncInfo {
	t.Helper()
	for _, fi := range e.order {
		if fi.Obj.Name() == name {
			return fi
		}
	}
	t.Fatalf("function %q not found in engine", name)
	return nil
}

func TestSummaryParamPassthrough(t *testing.T) {
	e, _ := loadEngineFixture(t)
	sum := funcByName(t, e, "passthrough").Summary
	if len(sum.ParamToResults) != 1 || sum.ParamToResults[0]&1 == 0 {
		t.Errorf("passthrough: param 0 should taint result 0, got %v", sum.ParamToResults)
	}
	if sum.FreshResults != 0 {
		t.Errorf("passthrough: no fresh results expected, got %b", sum.FreshResults)
	}
}

func TestSummarySanitizerBreaksFlow(t *testing.T) {
	e, _ := loadEngineFixture(t)
	sum := funcByName(t, e, "sealed").Summary
	if sum.ParamToResults[0] != 0 {
		t.Errorf("sealed: Seal output must not carry the key's taint, got %b", sum.ParamToResults[0])
	}
}

func TestSummaryFreshSource(t *testing.T) {
	e, _ := loadEngineFixture(t)
	sum := funcByName(t, e, "source").Summary
	if sum.FreshResults&1 == 0 {
		t.Errorf("source: reading masterSecret must make result 0 fresh, got %b", sum.FreshResults)
	}
}

func TestSummarySinkParams(t *testing.T) {
	e, _ := loadEngineFixture(t)
	sum := funcByName(t, e, "sinkParam").Summary
	if sum.SinkParams&1 == 0 {
		t.Fatalf("sinkParam: param 0 reaches log.Printf, got SinkParams=%b", sum.SinkParams)
	}
	if via := sum.SinkVia[0]; via != "log.Printf" {
		t.Errorf("sinkParam: SinkVia[0] = %q, want log.Printf", via)
	}
}

func TestSummaryReceiverIsParamZero(t *testing.T) {
	e, _ := loadEngineFixture(t)
	sum := funcByName(t, e, "id").Summary
	if len(sum.ParamToResults) != 1 || sum.ParamToResults[0]&1 == 0 {
		t.Errorf("blob.id: receiver (param 0) should taint result 0, got %v", sum.ParamToResults)
	}
}

func TestSummaryBlocks(t *testing.T) {
	e, _ := loadEngineFixture(t)
	sum := funcByName(t, e, "waiter").Summary
	if !sum.Blocks || sum.BlockDesc != "channel receive" {
		t.Errorf("waiter: Blocks=%v BlockDesc=%q, want blocking channel receive", sum.Blocks, sum.BlockDesc)
	}
	if nb := funcByName(t, e, "nonBlocking").Summary; nb.Blocks {
		t.Errorf("nonBlocking: a select with default must not block, got BlockDesc=%q", nb.BlockDesc)
	}
}

func TestSummaryAcquires(t *testing.T) {
	e, _ := loadEngineFixture(t)
	direct := funcByName(t, e, "touch").Summary
	if len(direct.Acquires) != 1 || !strings.HasSuffix(direct.Acquires[0], ".box).mu") {
		t.Fatalf("touch: Acquires = %v, want the box mu key", direct.Acquires)
	}
	transitive := funcByName(t, e, "touchTransitively").Summary
	if len(transitive.Acquires) != 1 || transitive.Acquires[0] != direct.Acquires[0] {
		t.Errorf("touchTransitively: Acquires = %v, want %v via the static call", transitive.Acquires, direct.Acquires)
	}
}

func TestInterfaceDispatchFansOut(t *testing.T) {
	e, pkg := loadEngineFixture(t)
	fi := funcByName(t, e, "openDoor")
	var call *ast.CallExpr
	ast.Inspect(fi.Decl.Body, func(n ast.Node) bool {
		if c, ok := n.(*ast.CallExpr); ok && call == nil {
			call = c
		}
		return true
	})
	if call == nil {
		t.Fatal("no call found in openDoor")
	}
	callees := e.Callees(pkg, call)
	names := make(map[string]bool)
	for _, c := range callees {
		names[funcDisplay(c)] = true
	}
	if len(callees) != 2 || !names["(*fixture.redDoor).Open"] || !names["(*fixture.blueDoor).Open"] {
		t.Errorf("interface call should fan out to both Open implementations, got %v", names)
	}
	if sc := e.StaticCallee(pkg, call); sc != nil {
		t.Errorf("interface call must have no static callee, got %s", funcDisplay(sc))
	}
}

// TestLoadReportsBrokenPackages pins satellite behavior: a package that
// fails to type-check is excluded from analysis and reported as a
// PackageError, while the rest of the module still loads.
func TestLoadReportsBrokenPackages(t *testing.T) {
	root := t.TempDir()
	write := func(rel, content string) {
		t.Helper()
		p := filepath.Join(root, rel)
		if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("go.mod", "module example.com/broken\n\ngo 1.22\n")
	write("good/good.go", "package good\n\nfunc OK() int { return 1 }\n")
	write("bad/bad.go", "package bad\n\nfunc Broken() int { return undefinedIdent }\n")

	pkgs, broken, err := Load(root)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	var paths []string
	for _, p := range pkgs {
		paths = append(paths, p.Path)
	}
	if len(pkgs) != 1 || pkgs[0].Path != "example.com/broken/good" {
		t.Errorf("loaded packages = %v, want only the good package", paths)
	}
	if len(broken) != 1 {
		t.Fatalf("broken = %v, want exactly one entry", broken)
	}
	if broken[0].Path != "example.com/broken/bad" {
		t.Errorf("broken path = %q, want the bad package", broken[0].Path)
	}
	if msg := broken[0].Error(); !strings.Contains(msg, "example.com/broken/bad") || !strings.Contains(msg, "undefinedIdent") {
		t.Errorf("PackageError message %q should name the package and the cause", msg)
	}
}
