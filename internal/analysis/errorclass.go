package analysis

import (
	"go/ast"
	"go/constant"
	"go/types"
	"sort"
	"strings"
)

// ErrorClass enforces that every error crossing the core/sessionhost
// API boundary stays classifiable — the property the fault-handling
// layer's ClassifyError depends on to map failures onto TLS alerts and
// drain decisions:
//
//  1. Exhaustive class switches. A switch over an ErrorClass-typed
//     value with no default must list every constant of the enum;
//     adding a class to the enum then misses it in String() or
//     alertForClass silently mis-handles the new class.
//
//  2. No class-erasing wrapping. In a boundary package, fmt.Errorf with
//     an error-typed argument must use %w: formatting with %v or %s
//     flattens the error to a string, so errors.As in ClassifyError can
//     no longer see the typed cause and the error degrades to
//     ClassInternal.
//
//  3. Every boundary error type is classified. An exported *Error type
//     declared in a boundary package must be referenced by some
//     ClassifyError in the module, otherwise callers can receive an
//     error no classifier maps to a class.
//
// Boundary packages are repro/internal/core and repro/internal/
// sessionhost, plus any package that declares a ClassifyError function
// (which is how fixtures opt in).
var ErrorClass = &Analyzer{
	Name:        "errorclass",
	Doc:         "errors crossing the core/sessionhost boundary must stay classifiable by ClassifyError",
	NeedsEngine: true,
	Run:         runErrorClass,
}

// errorClassBoundaryPkgs are the module's API-boundary packages: the
// session layer callers program against. tls12 and the transports sit
// below the boundary — their typed errors surface wrapped in core's.
var errorClassBoundaryPkgs = map[string]bool{
	"repro/internal/core":        true,
	"repro/internal/sessionhost": true,
}

func runErrorClass(pass *Pass) {
	checkClassSwitches(pass)
	if errorClassBoundaryPkgs[pass.Pkg.Types.Path()] || pass.Pkg.Types.Scope().Lookup("ClassifyError") != nil {
		checkWrapVerbs(pass)
		checkClassified(pass)
	}
}

// checkClassSwitches enforces rule 1: defaultless switches over an
// ErrorClass value must cover the whole enum.
func checkClassSwitches(pass *Pass) {
	for _, file := range pass.Pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			sw, ok := n.(*ast.SwitchStmt)
			if !ok || sw.Tag == nil {
				return true
			}
			tv, ok := pass.Pkg.Info.Types[sw.Tag]
			if !ok {
				return true
			}
			named, ok := tv.Type.(*types.Named)
			if !ok || named.Obj().Name() != "ErrorClass" {
				return true
			}
			covered := make(map[types.Object]bool)
			for _, c := range sw.Body.List {
				cc, ok := c.(*ast.CaseClause)
				if !ok {
					continue
				}
				if cc.List == nil {
					return true // default clause: exhaustive by construction
				}
				for _, e := range cc.List {
					var id *ast.Ident
					switch e := ast.Unparen(e).(type) {
					case *ast.Ident:
						id = e
					case *ast.SelectorExpr:
						id = e.Sel
					}
					if id != nil {
						if obj := pass.Pkg.Info.Uses[id]; obj != nil {
							covered[obj] = true
						}
					}
				}
			}
			var missing []string
			for _, c := range enumConstants(named) {
				if !covered[c] {
					missing = append(missing, c.Name())
				}
			}
			if len(missing) > 0 {
				pass.Reportf(sw.Pos(), "switch over %s has no default and does not handle %s; every error class must be handled",
					named.Obj().Name(), strings.Join(missing, ", "))
			}
			return true
		})
	}
}

// enumConstants returns the named type's package-level constants in
// name order — the members of the enum.
func enumConstants(named *types.Named) []*types.Const {
	pkg := named.Obj().Pkg()
	if pkg == nil {
		return nil
	}
	scope := pkg.Scope()
	names := scope.Names()
	sort.Strings(names)
	var out []*types.Const
	for _, name := range names {
		if c, ok := scope.Lookup(name).(*types.Const); ok && types.Identical(c.Type(), named) {
			out = append(out, c)
		}
	}
	return out
}

// checkWrapVerbs enforces rule 2: fmt.Errorf in a boundary package may
// not flatten an error-typed argument with %v/%s — it must wrap with %w
// so errors.As still sees the typed cause.
func checkWrapVerbs(pass *Pass) {
	errIface := types.Universe.Lookup("error").Type().Underlying().(*types.Interface)
	for _, file := range pass.Pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || calleePkg(pass.Pkg.Info, call) != "fmt" || calleeName(call) != "Errorf" || len(call.Args) < 2 {
				return true
			}
			tv, ok := pass.Pkg.Info.Types[call.Args[0]]
			if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
				return true
			}
			if strings.Contains(constant.StringVal(tv.Value), "%w") {
				return true
			}
			for _, arg := range call.Args[1:] {
				atv, ok := pass.Pkg.Info.Types[arg]
				if !ok || atv.Type == nil {
					continue
				}
				if types.Implements(atv.Type, errIface) {
					pass.Reportf(call.Pos(), "fmt.Errorf formats error %q without %%w; the wrapped class is lost to ClassifyError across the API boundary",
						exprName(arg))
					break
				}
			}
			return true
		})
	}
}

// checkClassified enforces rule 3: every exported *Error type the
// boundary package declares must be referenced by some ClassifyError in
// the module.
func checkClassified(pass *Pass) {
	var classifiers []*FuncInfo
	for _, fi := range pass.Engine.order {
		if fi.Obj.Name() == "ClassifyError" && fi.Decl != nil && fi.Decl.Body != nil {
			classifiers = append(classifiers, fi)
		}
	}
	if len(classifiers) == 0 {
		return
	}
	referenced := make(map[types.Object]bool)
	for _, fi := range classifiers {
		ast.Inspect(fi.Decl.Body, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok {
				if obj := fi.Pkg.Info.Uses[id]; obj != nil {
					referenced[obj] = true
				}
			}
			return true
		})
	}
	errIface := types.Universe.Lookup("error").Type().Underlying().(*types.Interface)
	scope := pass.Pkg.Types.Scope()
	names := scope.Names()
	sort.Strings(names)
	for _, name := range names {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok || !tn.Exported() || !strings.HasSuffix(name, "Error") || tn.IsAlias() {
			continue
		}
		t := tn.Type()
		if !types.Implements(t, errIface) && !types.Implements(types.NewPointer(t), errIface) {
			continue
		}
		if !referenced[tn] {
			pass.Reportf(tn.Pos(), "error type %s crosses the API boundary but no ClassifyError references it; add a classification case",
				name)
		}
	}
}
