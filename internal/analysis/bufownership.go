package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// BufOwnership enforces the pooled record-buffer discipline of
// DESIGN.md §6: a buffer from tls12.GetRecordBuf must either be
// returned with PutRecordBuf on every path (a deferred Put counts) or
// handed off to a new owner (returned, stored, or passed on), and once
// Put it must never be touched again — the pool will hand it to a
// concurrent session. The check is per-function and flow-insensitive:
// events are ordered by source position, which matches the
// get-use-put / get-defer-put shapes the data plane uses.
//
// Buffers that live in struct fields (the tls12 record layer's
// readBuf/writeBuf, the tcpx conn's pooled read buffer) outlive any
// single function, so the per-function check cannot see their Put. For
// those the analyzer applies a package-level rule instead: every field
// ever assigned from GetRecordBuf must be released by a
// PutRecordBuf(owner.field) somewhere in the same package — the
// single-owner lifetime is then Get-on-init / Put-on-Close, with the
// release path's reachability left to the close-semantics tests.
var BufOwnership = &Analyzer{
	Name: "bufownership",
	Doc:  "pooled record buffers: pair every Get with a Put, never touch a buffer after Put",
	Run:  runBufOwnership,
}

const (
	getBufName = "GetRecordBuf"
	putBufName = "PutRecordBuf"
)

// bufEvent is one position-ordered observation about a tracked buffer
// variable inside a function.
type bufEvent struct {
	pos  token.Pos
	kind bufEventKind
}

type bufEventKind int

const (
	evGet     bufEventKind = iota // x := GetRecordBuf()
	evPut                         // PutRecordBuf(x)
	evDefPut                      // defer PutRecordBuf(x)
	evUse                         // any other read of x
	evHandoff                     // x escapes: returned, stored, or passed to a callee
	evKill                        // x reassigned from something else: tracking ends
)

func runBufOwnership(pass *Pass) {
	for _, file := range pass.Pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Body != nil {
					checkBufOwners(pass, n.Body)
				}
				return false // FuncLits inside are walked by checkBufOwners
			}
			return true
		})
	}
	checkFieldOwners(pass)
}

// checkFieldOwners is the package-level half of the discipline: a
// struct field assigned from GetRecordBuf holds a pooled buffer whose
// lifetime spans functions, so its release cannot be checked
// per-function — instead the package must contain a matching
// PutRecordBuf(owner.field) for the same field object. Three get
// shapes feed the rule: plain field assignment (owner.field = Get),
// indexed-field assignment (owner.field[i] = Get — a per-slot buffer
// array), and composite-literal initialization (&T{field: Get()} — the
// pipeline's slot-allocation handoff, DESIGN.md §14). A release
// through any of those shapes pairs with any get of the same field.
func checkFieldOwners(pass *Pass) {
	info := pass.Pkg.Info
	fieldObj := func(e ast.Expr) types.Object {
		e = ast.Unparen(e)
		if ix, ok := e.(*ast.IndexExpr); ok {
			e = ast.Unparen(ix.X)
		}
		sel, ok := e.(*ast.SelectorExpr)
		if !ok {
			return nil
		}
		return info.Uses[sel.Sel]
	}
	gets := make(map[types.Object]token.Pos)
	puts := make(map[types.Object]bool)
	noteGet := func(obj types.Object, pos token.Pos) {
		if obj != nil {
			if _, seen := gets[obj]; !seen {
				gets[obj] = pos
			}
		}
	}
	for _, file := range pass.Pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				if len(n.Lhs) != len(n.Rhs) {
					return true
				}
				for i, lhs := range n.Lhs {
					call, ok := ast.Unparen(n.Rhs[i]).(*ast.CallExpr)
					if !ok || calleeName(call) != getBufName {
						continue
					}
					noteGet(fieldObj(lhs), n.Pos())
				}
			case *ast.CompositeLit:
				// T{field: GetRecordBuf()}: the fresh buffer is owned by
				// the new value's field from birth.
				for _, elt := range n.Elts {
					kv, ok := elt.(*ast.KeyValueExpr)
					if !ok {
						continue
					}
					call, ok := ast.Unparen(kv.Value).(*ast.CallExpr)
					if !ok || calleeName(call) != getBufName {
						continue
					}
					if key, ok := kv.Key.(*ast.Ident); ok {
						noteGet(info.Uses[key], kv.Pos())
					}
				}
			case *ast.CallExpr:
				if calleeName(n) == putBufName && len(n.Args) == 1 {
					if obj := fieldObj(n.Args[0]); obj != nil {
						puts[obj] = true
					}
				}
			}
			return true
		})
	}
	for obj, pos := range gets {
		if !puts[obj] {
			pass.Reportf(pos, "field %s holds a buffer from GetRecordBuf but the package never releases it with PutRecordBuf", obj.Name())
		}
	}
}

// checkBufOwners analyzes one function body (including nested
// literals: a buffer obtained in a closure follows the same rules
// within that closure's text).
func checkBufOwners(pass *Pass, body *ast.BlockStmt) {
	events := make(map[types.Object][]bufEvent)
	info := pass.Pkg.Info

	record := func(obj types.Object, pos token.Pos, kind bufEventKind) {
		if obj != nil {
			events[obj] = append(events[obj], bufEvent{pos: pos, kind: kind})
		}
	}
	objOf := func(e ast.Expr) types.Object {
		id := rootIdent(e)
		if id == nil {
			return nil
		}
		if obj, ok := info.Uses[id]; ok {
			return obj
		}
		return info.Defs[id]
	}

	walkWithStack(body, func(n ast.Node, stack []ast.Node) {
		switch n := n.(type) {
		case *ast.AssignStmt:
			classifyBufAssign(n, record, objOf)
		case *ast.CallExpr:
			if calleeName(n) == putBufName && len(n.Args) == 1 {
				kind := evPut
				if len(stack) > 0 {
					if _, ok := stack[len(stack)-1].(*ast.DeferStmt); ok {
						kind = evDefPut
					}
				}
				record(objOf(n.Args[0]), n.Pos(), kind)
			}
		case *ast.Ident:
			obj := info.Uses[n]
			if obj == nil {
				return
			}
			tracked, handoff := classifyBufUse(n, stack)
			if !tracked {
				return
			}
			kind := evUse
			if handoff {
				kind = evHandoff
			}
			record(obj, n.Pos(), kind)
		}
	})

	for obj, evs := range events {
		if !hasGet(evs) {
			continue
		}
		sort.Slice(evs, func(i, j int) bool { return evs[i].pos < evs[j].pos })
		reportBufLifetime(pass, obj, evs)
	}
}

// classifyBufAssign records Get events (x := GetRecordBuf()) and kill
// events (x reassigned away from the pool, other than the
// x = append(x, ...) growth idiom).
func classifyBufAssign(n *ast.AssignStmt, record func(types.Object, token.Pos, bufEventKind), objOf func(ast.Expr) types.Object) {
	if len(n.Lhs) != len(n.Rhs) {
		return
	}
	for i, lhs := range n.Lhs {
		id, ok := ast.Unparen(lhs).(*ast.Ident)
		if !ok {
			continue
		}
		obj := objOf(id)
		if obj == nil {
			continue
		}
		switch rhs := ast.Unparen(n.Rhs[i]).(type) {
		case *ast.CallExpr:
			switch calleeName(rhs) {
			case getBufName:
				record(obj, n.Pos(), evGet)
				continue
			case "append":
				if len(rhs.Args) > 0 && objOf(rhs.Args[0]) == obj {
					continue // x = append(x, ...): same buffer, still tracked
				}
			}
		case *ast.SliceExpr:
			if objOf(rhs.X) == obj {
				continue // x = x[:n]: same buffer, still tracked
			}
		}
		record(obj, n.Pos(), evKill)
	}
}

// classifyBufUse decides how one identifier occurrence counts: not at
// all (assignment LHS and the pool calls are handled elsewhere; reads
// inside measuring builtins are plain uses), a plain use, or a handoff
// that transfers ownership (returned, passed to a callee, or stored
// under another name).
func classifyBufUse(id *ast.Ident, stack []ast.Node) (tracked, handoff bool) {
	for i := len(stack) - 1; i >= 0; i-- {
		switch parent := stack[i].(type) {
		case *ast.ReturnStmt:
			return true, true
		case *ast.CallExpr:
			switch calleeName(parent) {
			case putBufName, getBufName:
				return false, false
			case "len", "cap", "append", "copy":
				return true, false
			}
			return true, true
		case *ast.AssignStmt:
			if id.Pos() <= parent.TokPos {
				return false, false // LHS: classifyBufAssign's business
			}
			return true, true // stored under another name or into a field
		case *ast.BlockStmt, *ast.FuncLit:
			return true, false
		}
	}
	return true, false
}

func hasGet(evs []bufEvent) bool {
	for _, e := range evs {
		if e.kind == evGet {
			return true
		}
	}
	return false
}

// reportBufLifetime checks one variable's ordered event stream.
func reportBufLifetime(pass *Pass, obj types.Object, evs []bufEvent) {
	// Split the stream into lifetimes at each Get/Kill boundary.
	start := -1
	for i, e := range evs {
		switch e.kind {
		case evGet:
			if start >= 0 {
				checkLifetime(pass, obj, evs[start:i])
			}
			start = i
		case evKill:
			if start >= 0 {
				checkLifetime(pass, obj, evs[start:i])
			}
			start = -1
		}
	}
	if start >= 0 {
		checkLifetime(pass, obj, evs[start:])
	}
}

// checkLifetime enforces the rules over one Get-to-end event window.
func checkLifetime(pass *Pass, obj types.Object, evs []bufEvent) {
	get := evs[0]
	putSeen := token.NoPos
	paired := false
	for _, e := range evs[1:] {
		switch e.kind {
		case evPut:
			if putSeen.IsValid() {
				pass.Reportf(e.pos, "pooled buffer %s returned to the pool twice", obj.Name())
			}
			putSeen = e.pos
			paired = true
		case evDefPut:
			paired = true
		case evUse, evHandoff:
			if putSeen.IsValid() {
				pass.Reportf(e.pos, "use of pooled buffer %s after PutRecordBuf", obj.Name())
			}
			if e.kind == evHandoff && !putSeen.IsValid() {
				paired = true // ownership moved to callee/caller
			}
		}
	}
	if !paired {
		pass.Reportf(get.pos, "buffer %s from GetRecordBuf is neither returned with PutRecordBuf nor handed off", obj.Name())
	}
}
