package analysis

import (
	"go/ast"
	"go/types"
)

// AtomicField enforces all-or-nothing atomicity: a variable or struct
// field that is accessed through sync/atomic anywhere in the module
// must be accessed atomically everywhere. A single plain read racing an
// atomic.AddUint64 is a data race the race detector only catches when a
// test happens to interleave it; the analyzer catches it structurally.
// This is the discipline behind the sharded session-host metrics
// counters and the cipher-state swap — the typed sync/atomic.Uint64
// wrappers make violations unrepresentable, and this analyzer holds the
// remaining &field-style uses to the same bar.
//
// The index of atomically-accessed variables is module-wide (built by
// the engine from every package in the same load pass), so a field
// updated atomically in one package and read plainly in another is
// still caught.
var AtomicField = &Analyzer{
	Name:        "atomicfield",
	Doc:         "a field accessed via sync/atomic anywhere must be accessed atomically everywhere",
	NeedsEngine: true,
	Run:         runAtomicField,
}

func runAtomicField(pass *Pass) {
	atomics := pass.Engine.atomicVars
	if len(atomics) == 0 {
		return
	}
	for _, file := range pass.Pkg.Files {
		walkWithStack(file, func(n ast.Node, stack []ast.Node) {
			var obj types.Object
			switch n := n.(type) {
			case *ast.SelectorExpr:
				s, ok := pass.Pkg.Info.Selections[n]
				if !ok || s.Kind() != types.FieldVal {
					return
				}
				obj = s.Obj()
			case *ast.Ident:
				// Package-level variables used bare.
				u := pass.Pkg.Info.Uses[n]
				if u == nil {
					return
				}
				if v, ok := u.(*types.Var); !ok || v.IsField() {
					return
				}
				obj = u
			default:
				return
			}
			v, ok := obj.(*types.Var)
			if !ok {
				return
			}
			first, tracked := atomics[v]
			if !tracked {
				return
			}
			// Selector chains visit both x.f (SelectorExpr) and f
			// (Ident); count the access once, at the selector.
			if _, isIdent := n.(*ast.Ident); isIdent {
				if len(stack) > 0 {
					if sel, ok := stack[len(stack)-1].(*ast.SelectorExpr); ok && sel.Sel == n {
						return
					}
				}
			}
			if withinAtomicCall(pass.Pkg.Info, stack) {
				return
			}
			pass.Reportf(n.Pos(), "non-atomic access to %q, which is accessed via sync/atomic elsewhere (e.g. %s); every access must use sync/atomic",
				v.Name(), shortPos(pass.Pkg.Fset, first))
		})
	}
}

// withinAtomicCall reports whether the access is an operand of a
// sync/atomic call (the atomic access itself).
func withinAtomicCall(info *types.Info, stack []ast.Node) bool {
	for _, n := range stack {
		if call, ok := n.(*ast.CallExpr); ok && calleePkg(info, call) == "sync/atomic" {
			return true
		}
	}
	return false
}
