package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// This file computes per-function dataflow summaries — the engine under
// the interprocedural analyzers. For every function declared in the
// module it derives, by iterating an intraprocedural transfer function
// to a module-wide fixpoint:
//
//   - which parameters taint which results (key-derivation functions
//     propagate; AEAD seals sanitize),
//   - which results are fresh secret sources (reads of key-material
//     fields, ExportSessionKeys, Vault.UseSecret callbacks),
//   - which parameters reach a leak sink inside the function
//     (fmt/log/errors formatting, plaintext writes to connections,
//     assignments to package-level variables),
//   - whether the function may block (channel operations, defaultless
//     select, connection I/O, Vault wipes), and
//   - which mutexes it may acquire, transitively.
//
// Soundness limits (documented in DESIGN.md §8): taint through heap
// assignments (x.field = secret) is not tracked — instead every *read*
// of a confidentially-named field is a fresh source, which re-anchors
// the flow wherever the heap carried it; calls through function values
// and reflection propagate taint from every argument to every result
// (worst case); interface calls fan out to all module implementations.

// maxTrackedParams bounds the parameter bitsets (the receiver counts as
// parameter 0). Parameters beyond the bound are untracked.
const maxTrackedParams = 62

// originSet is a bitset of taint origins within one function: bit i =
// "carries whatever parameter i carries", freshOrigin = "carries a
// secret sourced inside this function".
type originSet uint64

// freshOrigin marks taint born inside the function (a source), as
// opposed to taint flowing in through a parameter.
const freshOrigin originSet = 1 << 63

func paramOrigin(i int) originSet {
	if i < 0 || i >= maxTrackedParams {
		return 0
	}
	return 1 << uint(i)
}

// Summary is one function's interprocedural dataflow summary.
type Summary struct {
	// ParamToResults[i] is a bitset of result indices that carry taint
	// when parameter i does (receiver first, when present).
	ParamToResults []uint32
	// FreshResults is a bitset of result indices that carry a secret
	// regardless of the inputs: the function is itself a source.
	FreshResults uint32
	// SinkParams is a bitset of parameters that reach a leak sink
	// inside the function (directly or through further calls).
	SinkParams originSet
	// SinkVia describes, per sink parameter, the path to the sink —
	// interprocedural provenance for diagnostics.
	SinkVia map[int]string
	// Blocks reports that the function may block: channel send or
	// receive, select without default, connection I/O, a Vault wipe, or
	// a call to a function that does.
	Blocks bool
	// BlockDesc names the first blocking operation found, for
	// diagnostics ("channel send", "blocking call to (*T).drain").
	BlockDesc string
	// Acquires lists the lock keys (see lockKey) the function may
	// acquire, transitively through module calls.
	Acquires []string
}

func (s Summary) equal(o Summary) bool {
	if s.FreshResults != o.FreshResults || s.SinkParams != o.SinkParams ||
		s.Blocks != o.Blocks || s.BlockDesc != o.BlockDesc ||
		len(s.ParamToResults) != len(o.ParamToResults) ||
		len(s.SinkVia) != len(o.SinkVia) || len(s.Acquires) != len(o.Acquires) {
		return false
	}
	for i := range s.ParamToResults {
		if s.ParamToResults[i] != o.ParamToResults[i] {
			return false
		}
	}
	for k, v := range s.SinkVia {
		if o.SinkVia[k] != v {
			return false
		}
	}
	for i := range s.Acquires {
		if s.Acquires[i] != o.Acquires[i] {
			return false
		}
	}
	return true
}

// secretSourceFuncs are callee names whose first result is always key
// material, wherever they are declared.
var secretSourceFuncs = map[string]bool{
	"ExportSessionKeys": true,
	"ExportPrimaryKeys": true,
}

// enclaveEntryMethods take a callback whose parameters carry
// enclave-resident secrets; the callback parameters are fresh sources.
var enclaveEntryMethods = map[string]bool{"UseSecret": true, "Enter": true}

// sanitizerNames are callees whose results do not carry their
// arguments' taint: AEAD seals and asymmetric encryption (the output is
// safe for the wire), digests (a hash of a key is an identifier, not
// the key — ticket names, cache keys), constant-time compares (public
// verdict), and wipes (no output at all).
var sanitizerNames = map[string]bool{
	"Wipe": true, "WipePrefix": true,
	"Seal": true, "SealAppend": true, "SealedBox": true,
	"ConstantTimeCompare": true, "ConstantTimeSelect": true, "ConstantTimeByteEq": true,
	"Sum": true, "Sum224": true, "Sum256": true, "Sum384": true, "Sum512": true,
}

// sanitizerPrefixes extends sanitizerNames by prefix (EncryptPKCS1v15,
// EncryptOAEP).
var sanitizerPrefixes = []string{"Encrypt"}

// formatSinkFuncs are the stdlib formatting sinks, per package: a
// secret formatted here lands in a log line, an error string, or an
// operator-visible message.
var formatSinkFuncs = map[string]map[string]bool{
	"fmt": {
		"Print": true, "Printf": true, "Println": true,
		"Sprint": true, "Sprintf": true, "Sprintln": true,
		"Fprint": true, "Fprintf": true, "Fprintln": true,
		"Errorf": true, "Appendf": true, "Append": true, "Appendln": true,
	},
	"log": {
		"Print": true, "Printf": true, "Println": true,
		"Fatal": true, "Fatalf": true, "Fatalln": true,
		"Panic": true, "Panicf": true, "Panicln": true,
		"Output": true,
	},
	"errors": {"New": true},
}

// methodSinkNames are method names treated as formatting sinks when the
// callee cannot be resolved to a module function (a Logf function-value
// field, an embedded logger).
var methodSinkNames = map[string]bool{
	"logf": true, "Logf": true, "Printf": true, "Errorf": true, "Fatalf": true,
}

// secretTypeNames are named types that carry key material wholesale:
// reading any field of them yields a secret.
var secretTypeNames = map[string]bool{
	"KeyMaterial": true, "SessionKeys": true, "HopKeys": true,
}

// secretFieldRead reports whether a selector expression reads a
// key-material field: the field name is confidential (helpers.go) or
// STEK/pre-master-like, or the struct's type is a known key-material
// carrier, and the field's type can hold secret bytes.
func secretFieldRead(info *types.Info, sel *ast.SelectorExpr) bool {
	s, ok := info.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return false
	}
	ft := s.Type()
	carrier := isByteSlice(ft) || isByteArray(ft) || isByteSliceMap(ft) || isString(ft)
	if !carrier {
		// Nested key-carrying structs (KeyMaterial.Down) stay tainted
		// structurally.
		if n, ok := ft.(*types.Named); ok && secretTypeNames[n.Obj().Name()] {
			return true
		}
		return false
	}
	if isPublicKeyType(ft) {
		return false
	}
	name := strings.ToLower(sel.Sel.Name)
	if confidentialName(sel.Sel.Name) ||
		strings.Contains(name, "stek") || strings.Contains(name, "premaster") || strings.Contains(name, "ticketkey") {
		return true
	}
	// Any byte-carrier field of a wholesale key-material struct.
	if rt := s.Recv(); rt != nil {
		if p, ok := rt.(*types.Pointer); ok {
			rt = p.Elem()
		}
		if n, ok := rt.(*types.Named); ok && secretTypeNames[n.Obj().Name()] {
			return true
		}
	}
	return false
}

func isString(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

// taintableType reports whether a value of this type can carry secret
// bytes: strings, byte slices/arrays, containers of those, and the
// named key-material structs (plus pointers to any of them). Everything
// else — sessions, conns, errors, counters — cannot become "secret by
// association": a struct that *holds* a key is not itself the key, and
// propagating taint through such aggregates drowns the real flows in
// noise. The key-material that matters re-anchors as a fresh source at
// the field read (secretFieldRead), so precision is kept where the
// bytes actually surface.
func taintableType(t types.Type) bool {
	return taintableAtDepth(t, 0)
}

func taintableAtDepth(t types.Type, depth int) bool {
	if t == nil || depth > 4 {
		return false
	}
	if isPublicKeyType(t) {
		return false
	}
	if n, ok := derefNamed(t); ok && secretTypeNames[n.Obj().Name()] {
		return true
	}
	switch u := t.Underlying().(type) {
	case *types.Basic:
		return u.Info()&types.IsString != 0
	case *types.Pointer:
		return taintableAtDepth(u.Elem(), depth+1)
	case *types.Slice:
		return isByteElem(u.Elem()) || taintableAtDepth(u.Elem(), depth+1)
	case *types.Array:
		return isByteElem(u.Elem()) || taintableAtDepth(u.Elem(), depth+1)
	case *types.Map:
		return isByteElem(u.Elem()) || taintableAtDepth(u.Elem(), depth+1)
	}
	return false
}

func isByteElem(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Uint8 || b.Kind() == types.Rune)
}

// isConnLike reports whether a type's method set looks like a network
// connection (it has deadline setters): writes to it land on the wire.
func isConnLike(t types.Type) bool {
	if t == nil {
		return false
	}
	for _, tt := range []types.Type{t, types.NewPointer(t)} {
		ms := types.NewMethodSet(tt)
		if ms.Lookup(nil, "SetReadDeadline") != nil || ms.Lookup(nil, "SetWriteDeadline") != nil {
			return nil != ms.Lookup(nil, "Write")
		}
	}
	return false
}

// funcState is the mutable per-function analysis state during one
// summarize pass.
type funcState struct {
	e       *Engine
	fi      *FuncInfo
	info    *types.Info
	params  map[types.Object]int
	results map[types.Object]int // named results
	origins map[types.Object]originSet
	sum     Summary
	finds   []engineFinding
	acquire map[string]bool
}

// computeSummaries iterates summarize over every module function until
// no summary changes (the transfer is monotone, so this terminates).
func (e *Engine) computeSummaries() {
	const maxRounds = 24
	for round := 0; round < maxRounds; round++ {
		changed := false
		e.secretFindings = nil
		for _, fi := range e.order {
			s, finds := e.summarize(fi)
			if !s.equal(fi.Summary) {
				changed = true
			}
			fi.Summary = s
			e.secretFindings = append(e.secretFindings, finds...)
		}
		if !changed {
			break
		}
	}
}

// summarize computes one function's summary from its body and the
// current summaries of its callees, collecting fresh-taint sink
// findings along the way.
func (e *Engine) summarize(fi *FuncInfo) (Summary, []engineFinding) {
	if fi.Decl == nil || fi.Decl.Body == nil {
		return Summary{}, nil
	}
	st := &funcState{
		e:       e,
		fi:      fi,
		info:    fi.Pkg.Info,
		params:  make(map[types.Object]int),
		results: make(map[types.Object]int),
		origins: make(map[types.Object]originSet),
		acquire: make(map[string]bool),
	}
	sig := fi.Obj.Type().(*types.Signature)
	idx := 0
	if sig.Recv() != nil {
		st.params[sig.Recv()] = idx
		idx++
	}
	for i := 0; i < sig.Params().Len(); i++ {
		st.params[sig.Params().At(i)] = idx
		idx++
	}
	st.sum.ParamToResults = make([]uint32, idx)
	st.sum.SinkVia = make(map[int]string)
	for i := 0; i < sig.Results().Len(); i++ {
		if v := sig.Results().At(i); v.Name() != "" {
			st.results[v] = i
		}
	}
	for obj, i := range st.params {
		if taintableType(obj.Type()) {
			st.origins[obj] = paramOrigin(i)
		}
	}

	// Propagate assignments to a local fixpoint, then scan for sinks,
	// returns, blocking operations, and lock acquisitions.
	for pass := 0; pass < 8; pass++ {
		if !st.propagate(fi.Decl.Body) {
			break
		}
	}
	st.scan(fi.Decl.Body)

	st.sum.Acquires = make([]string, 0, len(st.acquire))
	for k := range st.acquire {
		st.sum.Acquires = append(st.sum.Acquires, k)
	}
	sort.Strings(st.sum.Acquires)
	return st.sum, st.finds
}

// exprOrigins computes the taint origins an expression's value carries.
func (st *funcState) exprOrigins(e ast.Expr) originSet {
	if e == nil {
		return 0
	}
	if tv, ok := st.info.Types[e]; ok {
		if tv.Value != nil {
			return 0 // constants are never secrets
		}
		if tv.IsValue() && !taintableType(tv.Type) {
			return 0 // the value cannot carry secret bytes
		}
	}
	switch e := e.(type) {
	case *ast.Ident:
		obj := st.info.Uses[e]
		if obj == nil {
			obj = st.info.Defs[e]
		}
		return st.origins[obj]
	case *ast.SelectorExpr:
		if secretFieldRead(st.info, e) {
			return freshOrigin
		}
		if _, ok := st.info.Selections[e]; ok {
			// A plain field read inherits its operand's taint (a field
			// of a tainted struct value).
			return st.exprOrigins(e.X)
		}
		// Package-qualified name.
		return st.origins[st.info.Uses[e.Sel]]
	case *ast.CallExpr:
		return st.callResultOrigins(e, 0)
	case *ast.IndexExpr:
		return st.exprOrigins(e.X)
	case *ast.SliceExpr:
		return st.exprOrigins(e.X)
	case *ast.StarExpr:
		return st.exprOrigins(e.X)
	case *ast.UnaryExpr:
		if e.Op == token.ARROW {
			return 0 // channel payloads are not tracked
		}
		return st.exprOrigins(e.X)
	case *ast.ParenExpr:
		return st.exprOrigins(e.X)
	case *ast.BinaryExpr:
		switch e.Op {
		case token.EQL, token.NEQ, token.LSS, token.LEQ, token.GTR, token.GEQ,
			token.LAND, token.LOR:
			return 0 // comparisons yield public verdicts
		}
		return st.exprOrigins(e.X) | st.exprOrigins(e.Y)
	case *ast.CompositeLit:
		var o originSet
		for _, el := range e.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				o |= st.exprOrigins(kv.Value)
			} else {
				o |= st.exprOrigins(el)
			}
		}
		return o
	case *ast.TypeAssertExpr:
		return st.exprOrigins(e.X)
	case *ast.FuncLit:
		return 0
	}
	return 0
}

// callResultOrigins computes the origins of result index res of a call.
func (st *funcState) callResultOrigins(call *ast.CallExpr, res int) originSet {
	if !taintableType(st.callResultType(call, res)) {
		return 0
	}
	// Type conversions carry their operand's taint.
	if tv, ok := st.info.Types[call.Fun]; ok && tv.IsType() {
		if len(call.Args) == 1 {
			return st.exprOrigins(call.Args[0])
		}
		return 0
	}
	name := calleeName(call)
	switch name {
	case "len", "cap", "make", "new":
		return 0
	case "append":
		var o originSet
		for _, a := range call.Args {
			o |= st.exprOrigins(a)
		}
		return o
	}
	if isSanitizer(name) {
		return 0
	}
	if secretSourceFuncs[name] && res == 0 {
		return freshOrigin
	}

	callees := st.e.Callees(st.fi.Pkg, call)
	if len(callees) == 0 {
		// Unresolved (stdlib, function value): worst case — every
		// argument's taint, and the receiver's, reaches every result.
		var o originSet
		for _, a := range call.Args {
			o |= st.exprOrigins(a)
		}
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
			if _, isMethod := st.info.Selections[sel]; isMethod {
				o |= st.exprOrigins(sel.X)
			}
		}
		return o
	}
	var o originSet
	for _, callee := range callees {
		sum := callee.Summary
		if sum.FreshResults&(1<<uint(res)) != 0 {
			o |= freshOrigin
		}
		for pi, args := 0, st.callArgs(call); pi < len(sum.ParamToResults) && pi < len(args); pi++ {
			if sum.ParamToResults[pi]&(1<<uint(res)) != 0 {
				o |= st.exprOrigins(args[pi])
			}
		}
	}
	return o
}

// callResultType resolves the static type of result index res of a call
// expression.
func (st *funcState) callResultType(call *ast.CallExpr, res int) types.Type {
	tv, ok := st.info.Types[call]
	if !ok || tv.Type == nil {
		return nil
	}
	if tup, ok := tv.Type.(*types.Tuple); ok {
		if res < tup.Len() {
			return tup.At(res).Type()
		}
		return nil
	}
	if res == 0 {
		return tv.Type
	}
	return nil
}

// callArgs returns the call's effective argument expressions with the
// receiver (for method calls on module functions) prepended, matching
// the summary's parameter indexing.
func (st *funcState) callArgs(call *ast.CallExpr) []ast.Expr {
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if s, isMethod := st.info.Selections[sel]; isMethod && s.Kind() == types.MethodVal {
			return append([]ast.Expr{sel.X}, call.Args...)
		}
	}
	return call.Args
}

func isSanitizer(name string) bool {
	if sanitizerNames[name] {
		return true
	}
	for _, p := range sanitizerPrefixes {
		if strings.HasPrefix(name, p) {
			return true
		}
	}
	return false
}

// assign records that obj now (also) carries origins o. Reports whether
// anything changed. Objects whose type cannot carry secret bytes are
// never tainted (see taintableType).
func (st *funcState) assign(obj types.Object, o originSet) bool {
	if obj == nil || o == 0 || !taintableType(obj.Type()) {
		return false
	}
	old := st.origins[obj]
	if old|o == old {
		return false
	}
	st.origins[obj] = old | o
	return true
}

// lhsObj resolves an assignment target to the object whose value (or
// backing storage, for index/slice/star targets) it mutates.
func (st *funcState) lhsObj(e ast.Expr) types.Object {
	id := rootIdent(e)
	if id == nil {
		return nil
	}
	obj := st.info.Uses[id]
	if obj == nil {
		obj = st.info.Defs[id]
	}
	return obj
}

// propagate runs one flow-insensitive pass of assignment-based taint
// propagation over the body. Reports whether any origin set grew.
func (st *funcState) propagate(body ast.Node) bool {
	changed := false
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if len(n.Rhs) == 1 && len(n.Lhs) > 1 {
				// Multi-value: a call, type assertion, or map read.
				if call, ok := ast.Unparen(n.Rhs[0]).(*ast.CallExpr); ok {
					for i, lhs := range n.Lhs {
						if st.assign(st.lhsObj(lhs), st.callResultOrigins(call, i)) {
							changed = true
						}
					}
					return true
				}
				o := st.exprOrigins(n.Rhs[0])
				for _, lhs := range n.Lhs {
					if st.assign(st.lhsObj(lhs), o) {
						changed = true
					}
				}
				return true
			}
			for i, rhs := range n.Rhs {
				if i >= len(n.Lhs) {
					break
				}
				if st.assign(st.lhsObj(n.Lhs[i]), st.exprOrigins(rhs)) {
					changed = true
				}
			}
		case *ast.GenDecl:
			for _, spec := range n.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for i, name := range vs.Names {
					if i < len(vs.Values) {
						if st.assign(st.info.Defs[name], st.exprOrigins(vs.Values[i])) {
							changed = true
						}
					}
				}
			}
		case *ast.RangeStmt:
			o := st.exprOrigins(n.X)
			if o != 0 {
				for _, v := range []ast.Expr{n.Key, n.Value} {
					if v != nil && st.assign(st.lhsObj(v), o) {
						changed = true
					}
				}
			}
		case *ast.TypeSwitchStmt:
			// switch v := x.(type): each clause binds its own object.
			var x ast.Expr
			if a, ok := n.Assign.(*ast.AssignStmt); ok && len(a.Rhs) == 1 {
				if ta, ok := ast.Unparen(a.Rhs[0]).(*ast.TypeAssertExpr); ok {
					x = ta.X
				}
			}
			if x != nil {
				o := st.exprOrigins(x)
				if o != 0 {
					for _, clause := range n.Body.List {
						if obj := st.info.Implicits[clause]; obj != nil {
							if st.assign(obj, o) {
								changed = true
							}
						}
					}
				}
			}
		case *ast.CallExpr:
			// copy(dst, src) moves src's bytes into dst's storage.
			if calleeName(n) == "copy" && len(n.Args) == 2 {
				if st.assign(st.lhsObj(n.Args[0]), st.exprOrigins(n.Args[1])) {
					changed = true
				}
			}
			// Vault.UseSecret / Enclave.Enter callback parameters are
			// fresh sources.
			if enclaveEntryMethods[calleeName(n)] && len(n.Args) > 0 {
				if lit, ok := ast.Unparen(n.Args[len(n.Args)-1]).(*ast.FuncLit); ok && lit.Type.Params != nil {
					for _, f := range lit.Type.Params.List {
						for _, name := range f.Names {
							if st.assign(st.info.Defs[name], freshOrigin) {
								changed = true
							}
						}
					}
				}
			}
		}
		return true
	})
	return changed
}
