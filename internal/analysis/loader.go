package analysis

import (
	"errors"
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package.
type Package struct {
	// Path is the import path ("repro/internal/core").
	Path string
	// Dir is the package's directory on disk.
	Dir string
	// Fset is the file set shared by every package of one load.
	Fset *token.FileSet
	// Files are the parsed non-test sources. Test files are exempt from
	// the protocol invariants (they legitimately compare keys, dump
	// host memory, and seed math/rand), so the loader skips them.
	Files []*ast.File
	// Types and Info carry the go/types results.
	Types *types.Package
	Info  *types.Info
}

// loader type-checks the module's packages from source, resolving
// module-internal imports recursively and standard-library imports
// through the toolchain's importers.
type loader struct {
	fset    *token.FileSet
	modPath string
	modRoot string

	pkgs    map[string]*Package // by import path, completed
	loading map[string]bool     // cycle detection
	broken  map[string]error    // by import path, failed to load or type-check
	stdlib  map[string]*types.Package
	std     types.Importer // compiled export data (fast path)
	stdSrc  types.Importer // from-source fallback
}

func newLoader(fset *token.FileSet) *loader {
	return &loader{
		fset:    fset,
		pkgs:    make(map[string]*Package),
		loading: make(map[string]bool),
		broken:  make(map[string]error),
		stdlib:  make(map[string]*types.Package),
		std:     importer.Default(),
		stdSrc:  importer.ForCompiler(fset, "source", nil),
	}
}

// Import implements types.Importer for the type-checker: module-local
// paths load from source, everything else resolves as stdlib.
func (l *loader) Import(path string) (*types.Package, error) {
	if path == l.modPath || strings.HasPrefix(path, l.modPath+"/") {
		pkg, err := l.loadModulePkg(path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return l.importStdlib(path)
}

func (l *loader) importStdlib(path string) (*types.Package, error) {
	if p, ok := l.stdlib[path]; ok {
		if p == nil {
			return nil, fmt.Errorf("analysis: unresolvable import %q", path)
		}
		return p, nil
	}
	p, err := l.std.Import(path)
	if err != nil {
		p, err = l.stdSrc.Import(path)
	}
	if err != nil {
		l.stdlib[path] = nil
		return nil, fmt.Errorf("analysis: import %q: %w", path, err)
	}
	l.stdlib[path] = p
	return p, nil
}

// loadModulePkg loads the module package at the given import path.
// Failures are cached in l.broken so a package shared by many importers
// is parsed (and reported) once.
func (l *loader) loadModulePkg(path string) (*Package, error) {
	if pkg, ok := l.pkgs[path]; ok {
		return pkg, nil
	}
	if err, ok := l.broken[path]; ok {
		return nil, err
	}
	if l.loading[path] {
		return nil, fmt.Errorf("analysis: import cycle through %q", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	dir := filepath.Join(l.modRoot, filepath.FromSlash(strings.TrimPrefix(path, l.modPath)))
	pkg, err := l.checkDir(dir, path, l)
	if err != nil {
		l.broken[path] = err
		return nil, err
	}
	l.pkgs[path] = pkg
	return pkg, nil
}

// checkDir parses and type-checks one directory as a package. Parse
// and type errors fail the package (the caller records it as broken):
// analyzing a package the compiler rejects would report findings
// against types that do not exist.
func (l *loader) checkDir(dir, path string, imp types.Importer) (*Package, error) {
	names, err := goSources(dir)
	if err != nil {
		return nil, err
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("analysis: no Go sources in %s", dir)
	}
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
		Implicits:  make(map[ast.Node]types.Object),
	}
	var terrs []error
	cfg := types.Config{
		Importer: imp,
		Error: func(err error) {
			terrs = append(terrs, err)
		},
	}
	tpkg, _ := cfg.Check(path, l.fset, files, info)
	if len(terrs) > 0 {
		return nil, terrs[0]
	}
	return &Package{Path: path, Dir: dir, Fset: l.fset, Files: files, Types: tpkg, Info: info}, nil
}

// goSources lists the directory's non-test Go files that build on the
// current platform, sorted. Build-constrained files (//go:build tags,
// _GOOS suffixes — e.g. the tcpx SO_REUSEPORT split) are filtered the
// way the compiler would, so platform alternates don't collide as
// duplicate declarations.
func goSources(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		if ok, err := build.Default.MatchFile(dir, name); err != nil || !ok {
			continue
		}
		names = append(names, name)
	}
	sort.Strings(names)
	return names, nil
}

// modulePath extracts the module path from root/go.mod.
func modulePath(root string) (string, error) {
	data, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", errors.New("analysis: no module directive in go.mod")
}

// PackageError reports one package that failed to load or type-check.
// The driver prints one line per broken package and skips it from
// analysis, rather than panicking on partial type information or
// silently analyzing a package the compiler would reject.
type PackageError struct {
	// Path is the package's import path.
	Path string
	// Err is the first parse or type error, representative of the
	// package's breakage.
	Err error
}

// Error implements the error interface.
func (e *PackageError) Error() string {
	return fmt.Sprintf("%s: %v", e.Path, e.Err)
}

// Load type-checks every package under the module rooted at root and
// returns the clean ones sorted by import path. Packages that fail to
// parse or type-check are excluded from the result and reported as
// PackageErrors (sorted by path), so the driver can refuse to trust
// partial type information without losing the rest of the module. The
// final error is reserved for module-level failures (no go.mod,
// unreadable tree).
func Load(root string) ([]*Package, []*PackageError, error) {
	absRoot, err := filepath.Abs(root)
	if err != nil {
		return nil, nil, err
	}
	modPath, err := modulePath(absRoot)
	if err != nil {
		return nil, nil, err
	}
	l := newLoader(token.NewFileSet())
	l.modPath = modPath
	l.modRoot = absRoot

	dirs, err := packageDirs(absRoot)
	if err != nil {
		return nil, nil, err
	}
	for _, dir := range dirs {
		rel, err := filepath.Rel(absRoot, dir)
		if err != nil {
			return nil, nil, err
		}
		path := modPath
		if rel != "." {
			path = modPath + "/" + filepath.ToSlash(rel)
		}
		if _, err := l.loadModulePkg(path); err != nil {
			l.broken[path] = err
		}
	}

	var pkgs []*Package
	var broken []*PackageError
	for path, err := range l.broken {
		broken = append(broken, &PackageError{Path: path, Err: err})
		delete(l.pkgs, path)
	}
	for _, pkg := range l.pkgs {
		pkgs = append(pkgs, pkg)
	}
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].Path < pkgs[j].Path })
	sort.Slice(broken, func(i, j int) bool { return broken[i].Path < broken[j].Path })
	return pkgs, broken, nil
}

// LoadDir type-checks a single standalone directory (a test fixture):
// imports resolve against the standard library only.
func LoadDir(dir string) (*Package, error) {
	absDir, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	l := newLoader(token.NewFileSet())
	return l.checkDir(absDir, "fixture/"+filepath.Base(absDir), stdlibOnly{l})
}

// stdlibOnly restricts an importer to standard-library paths.
type stdlibOnly struct{ l *loader }

func (s stdlibOnly) Import(path string) (*types.Package, error) {
	return s.l.importStdlib(path)
}

// packageDirs walks the module and returns every directory holding
// non-test Go sources, skipping hidden directories and testdata trees.
func packageDirs(root string) ([]string, error) {
	var dirs []string
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || name == "testdata") {
			return filepath.SkipDir
		}
		names, err := goSources(path)
		if err != nil {
			return err
		}
		if len(names) > 0 {
			dirs = append(dirs, path)
		}
		return nil
	})
	return dirs, err
}
