package analysis

import (
	"fmt"
	"sort"
	"strings"
)

// DefaultIgnoreBudget is the module-wide ceiling on //lint:ignore
// suppressions — exactly the number of justified deviations the tree
// carries today. A new suppression is a reviewed decision: either fix
// the finding, or raise the ceiling in the same change that argues for
// the new deviation.
const DefaultIgnoreBudget = 3

// IgnoreBudget counts the well-formed //lint:ignore directives across
// the packages and reports one "ignorebudget" diagnostic for each
// directive beyond the ceiling, anchored at the offending directive
// (in source order, so the newest additions are the ones flagged).
// Malformed directives are excluded — those are already findings in
// their own right (check "lintdirective"). A negative ceiling disables
// the check.
func IgnoreBudget(pkgs []*Package, ceiling int) []Diagnostic {
	if ceiling < 0 {
		return nil
	}
	var dirs []Diagnostic
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					if !strings.HasPrefix(c.Text, ignorePrefix) {
						continue
					}
					rest := strings.TrimSpace(strings.TrimPrefix(c.Text, ignorePrefix))
					checks, reason, _ := strings.Cut(rest, " ")
					if checks == "" || strings.TrimSpace(reason) == "" {
						continue
					}
					dirs = append(dirs, Diagnostic{
						Check: "ignorebudget",
						Pos:   pkg.Fset.Position(c.Slash),
					})
				}
			}
		}
	}
	sort.Slice(dirs, func(i, j int) bool {
		a, b := dirs[i], dirs[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		return a.Pos.Line < b.Pos.Line
	})
	if len(dirs) <= ceiling {
		return nil
	}
	out := dirs[ceiling:]
	for i := range out {
		out[i].Message = fmt.Sprintf(
			"suppression %d of %d exceeds the module //lint:ignore budget of %d: fix the underlying finding or raise the budget in a reviewed change",
			ceiling+1+i, len(dirs), ceiling)
	}
	return out
}
