package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// KeyWipe enforces key-material zeroization (paper §3.1: the adversary
// "can read and manipulate memory" on middlebox infrastructure, so
// secrets must not outlive their session). Any named struct type with a
// confidential byte-slice field — per-hop keys, master secrets, vault
// contents — must declare a Wipe (or wipe) method, and that method must
// route every such field through a wipe helper (secmem.Wipe/WipeAll, a
// nested Wipe, or a range loop that clears the entries). Teardown paths
// calling those methods are pinned by conventional tests; this check
// guarantees the methods exist and stay complete as fields are added.
//
// Scope: slice and map fields (heap-referenced bytes that survive
// copies of the struct), confidential fixed-size byte arrays (the
// hsfast STEK generations, tls12.Config's ticket key — wiping clears
// the canonical copy; any struct a copy lands in is flagged on its own
// terms), and value fields of secret-bearing struct types. Pointer
// fields are ownership boundaries — wiping shared state from one
// owner's teardown would corrupt the others — and stay call-site
// discipline. Array fields are typically cleared through the
// secmem.Wipe(x.field[:]) idiom, which counts as clearing the field.
var KeyWipe = &Analyzer{
	Name: "keywipe",
	Doc:  "structs holding key material must declare a complete Wipe method",
	Run:  runKeyWipe,
}

// wipeHelperNames are the call targets that count as clearing a field.
var wipeHelperNames = map[string]bool{"Wipe": true, "wipe": true, "WipeAll": true}

func runKeyWipe(pass *Pass) {
	for _, file := range pass.Pkg.Files {
		for _, decl := range file.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				checkWipeType(pass, ts)
			}
		}
	}
}

func checkWipeType(pass *Pass, ts *ast.TypeSpec) {
	obj, ok := pass.Pkg.Info.Defs[ts.Name].(*types.TypeName)
	if !ok || obj.IsAlias() {
		return
	}
	named, ok := obj.Type().(*types.Named)
	if !ok {
		return
	}
	st, ok := named.Underlying().(*types.Struct)
	if !ok {
		return
	}
	fields := secretFields(st)
	if len(fields) == 0 {
		return
	}

	wipe := findWipeMethod(pass, named)
	if wipe == nil {
		pass.Reportf(ts.Name.Pos(), "type %s holds key material (field %s) but declares no Wipe method",
			ts.Name.Name, strings.Join(fields, ", "))
		return
	}
	cleared := clearedFields(wipe)
	for _, f := range fields {
		if !cleared[f] {
			pass.Reportf(wipe.Name.Pos(), "Wipe method of %s does not clear secret field %s", ts.Name.Name, f)
		}
	}
}

// secretFields lists the struct's fields that must be wiped:
// confidential-named []byte / [N]byte / map[...][]byte fields, plus
// value fields whose struct type itself carries secrets. Recursion is
// through value struct fields only, which Go guarantees are acyclic.
func secretFields(st *types.Struct) []string {
	var out []string
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		t := f.Type()
		if isPublicKeyType(t) {
			continue
		}
		if confidentialName(f.Name()) && (isByteSlice(t) || isByteArray(t) || isByteSliceMap(t)) {
			out = append(out, f.Name())
			continue
		}
		if inner, ok := t.Underlying().(*types.Struct); ok {
			if _, isNamed := t.(*types.Named); isNamed && len(secretFields(inner)) > 0 {
				out = append(out, f.Name())
			}
		}
	}
	return out
}

// findWipeMethod locates the AST of the type's Wipe/wipe method.
func findWipeMethod(pass *Pass, named *types.Named) *ast.FuncDecl {
	for _, file := range pass.Pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv == nil || len(fd.Recv.List) == 0 {
				continue
			}
			if fd.Name.Name != "Wipe" && fd.Name.Name != "wipe" {
				continue
			}
			recvT := pass.Pkg.Info.Types[fd.Recv.List[0].Type].Type
			for recvT != nil {
				if ptr, ok := recvT.(*types.Pointer); ok {
					recvT = ptr.Elem()
					continue
				}
				break
			}
			if recvT == named || types.Identical(recvT, named) {
				return fd
			}
		}
	}
	return nil
}

// clearedFields scans a Wipe method body for the receiver fields it
// clears: arguments to wipe helpers, nested x.Field.Wipe() calls, and
// fields iterated by a range statement (the map-clearing idiom).
func clearedFields(fd *ast.FuncDecl) map[string]bool {
	cleared := make(map[string]bool)
	recv := receiverName(fd)
	if recv == "" || fd.Body == nil {
		return cleared
	}
	mark := func(e ast.Expr) {
		// Unwrap the array-wiping idiom secmem.Wipe(x.field[:]) down
		// to the field selector before matching.
		e = ast.Unparen(e)
		if sl, ok := e.(*ast.SliceExpr); ok {
			e = ast.Unparen(sl.X)
		}
		if sel, ok := e.(*ast.SelectorExpr); ok {
			if id, ok := ast.Unparen(sel.X).(*ast.Ident); ok && id.Name == recv {
				cleared[sel.Sel.Name] = true
			}
		}
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if wipeHelperNames[calleeName(n)] {
				for _, arg := range n.Args {
					mark(arg)
				}
				// x.Field.Wipe(): the field is the method receiver.
				if sel, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr); ok {
					mark(sel.X)
				}
			}
		case *ast.RangeStmt:
			mark(n.X)
		}
		return true
	})
	return cleared
}

// receiverName returns the name of a method's receiver variable.
func receiverName(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 || len(fd.Recv.List[0].Names) == 0 {
		return ""
	}
	return fd.Recv.List[0].Names[0].Name
}
