package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"strings"
)

// This file is the second half of the summary computation: after taint
// propagation converges (summary.go), scan walks the function once more
// to record sink reaches, result taint, blocking operations, and lock
// acquisitions.

// plaintextWriteSinkNames are callees that put their payload on the
// wire without sealing it. The record layer's WriteRecord is NOT here:
// it seals internally once a cipher is installed, and static analysis
// cannot see cipher activation — instead the engine treats any write to
// a connection-shaped value (isConnLike) as a plaintext sink, which
// catches record-layer bypasses, and these names catch explicitly
// plaintext helpers.
var plaintextWriteSinkNames = map[string]bool{
	"WritePlaintext":       true,
	"WritePlaintextRecord": true,
	"writePlaintextRecord": true,
}

// vaultWipeMethods are the Vault teardown entry points: an enclave
// transition (EnclaveVault) or a full zeroization sweep, neither of
// which belongs under a state mutex.
var vaultWipeMethods = map[string]bool{"Wipe": true, "WipePrefix": true}

// scan walks the body once after taint convergence, recording sinks,
// returns, blocking operations, and lock acquisitions into st.sum.
func (st *funcState) scan(body ast.Node) {
	walkWithStack(body, func(n ast.Node, stack []ast.Node) {
		switch n := n.(type) {
		case *ast.CallExpr:
			st.scanCallSinks(n)
			st.scanCallLocks(n)
			if desc, ok := st.callBlockDesc(n); ok && !underGoStmt(stack) {
				st.noteBlock(desc)
			}
		case *ast.AssignStmt:
			st.scanGlobalEscape(n)
		case *ast.ReturnStmt:
			st.scanReturn(n)
		case *ast.SendStmt:
			if !underGoStmt(stack) && !inSelectComm(stack, n) {
				st.noteBlock("channel send")
			}
		case *ast.UnaryExpr:
			if n.Op == token.ARROW && !underGoStmt(stack) && !inSelectComm(stack, n) {
				st.noteBlock("channel receive")
			}
		case *ast.SelectStmt:
			if !selectHasDefault(n) && !underGoStmt(stack) {
				st.noteBlock("select without default")
			}
		case *ast.RangeStmt:
			if tv, ok := st.info.Types[n.X]; ok && tv.Type != nil {
				if _, isChan := tv.Type.Underlying().(*types.Chan); isChan && !underGoStmt(stack) {
					st.noteBlock("range over channel")
				}
			}
		}
	})
}

// underGoStmt reports whether the node runs on a different goroutine
// than the function (inside a go statement): its blocking does not
// block the function itself. Deferred calls DO count — they run before
// earlier-registered deferred unlocks.
func underGoStmt(stack []ast.Node) bool {
	for _, n := range stack {
		if _, ok := n.(*ast.GoStmt); ok {
			return true
		}
	}
	return false
}

// inSelectComm reports whether the node sits in the communication
// clause of a select (before the case's colon): those operations take
// the select's blocking semantics — non-blocking with a default case,
// and already counted once at the SelectStmt otherwise.
func inSelectComm(stack []ast.Node, n ast.Node) bool {
	for _, a := range stack {
		if cc, ok := a.(*ast.CommClause); ok && n.Pos() < cc.Colon {
			return true
		}
	}
	return false
}

func selectHasDefault(s *ast.SelectStmt) bool {
	for _, c := range s.Body.List {
		if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
			return true
		}
	}
	return false
}

func (st *funcState) noteBlock(desc string) {
	if !st.sum.Blocks {
		st.sum.Blocks = true
		st.sum.BlockDesc = desc
	}
}

// sinkDesc classifies a call as a leak sink and returns a description
// plus the argument expressions whose taint constitutes a leak.
func (st *funcState) sinkDesc(call *ast.CallExpr) (string, []ast.Expr) {
	name := calleeName(call)
	pkg := calleePkg(st.info, call)
	if funcs, ok := formatSinkFuncs[pkg]; ok && funcs[name] {
		return pkg + "." + name, call.Args
	}
	if plaintextWriteSinkNames[name] {
		return "plaintext record write " + name, call.Args
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", nil
	}
	if _, isMethod := st.info.Selections[sel]; !isMethod {
		return "", nil
	}
	// Method sinks: writes to connection-shaped receivers put bytes on
	// the wire unsealed; logger-shaped methods format into logs.
	if name == "Write" || name == "WriteString" {
		if tv, ok := st.info.Types[sel.X]; ok && isConnLike(tv.Type) {
			return "plaintext connection write", call.Args
		}
	}
	if methodSinkNames[name] {
		// Only when the callee is unresolvable as a module function —
		// otherwise its own summary speaks.
		if len(st.e.Callees(st.fi.Pkg, call)) == 0 {
			return "log method " + name, call.Args
		}
	}
	return "", nil
}

// scanCallSinks reports tainted arguments reaching sinks: directly
// (fmt/log/errors, plaintext writes) or transitively through a module
// callee whose summary marks the parameter as sink-reaching.
func (st *funcState) scanCallSinks(call *ast.CallExpr) {
	if desc, args := st.sinkDesc(call); desc != "" {
		for _, arg := range args {
			st.noteSink(arg, call.Pos(), desc, "")
		}
		return
	}
	// Through module callees.
	for _, callee := range st.e.Callees(st.fi.Pkg, call) {
		sum := callee.Summary
		if sum.SinkParams == 0 {
			continue
		}
		args := st.callArgs(call)
		for pi := 0; pi < len(args) && pi < maxTrackedParams; pi++ {
			if sum.SinkParams&paramOrigin(pi) == 0 {
				continue
			}
			via := funcDisplay(callee)
			if deeper := sum.SinkVia[pi]; deeper != "" {
				via += " → " + deeper
			}
			st.noteSink(args[pi], call.Pos(), via, via)
		}
	}
}

// noteSink handles one sink-reaching expression: fresh taint is a
// finding here and now; parameter taint becomes part of the summary so
// callers are checked instead.
func (st *funcState) noteSink(arg ast.Expr, pos token.Pos, desc, via string) {
	o := st.exprOrigins(arg)
	if o == 0 {
		return
	}
	if o&freshOrigin != 0 {
		name := exprName(arg)
		if name == "" {
			name = "value"
		}
		st.finds = append(st.finds, engineFinding{
			pkg: st.fi.Pkg,
			pos: pos,
			msg: fmt.Sprintf("secret %q reaches %s", name, desc),
			via: via,
		})
	}
	for pi := 0; pi < len(st.sum.ParamToResults); pi++ {
		if o&paramOrigin(pi) != 0 {
			st.sum.SinkParams |= paramOrigin(pi)
			if _, ok := st.sum.SinkVia[pi]; !ok {
				st.sum.SinkVia[pi] = desc
			}
		}
	}
}

// scanGlobalEscape flags tainted values assigned to package-level
// variables: host-visible memory that outlives every enclave callback.
func (st *funcState) scanGlobalEscape(n *ast.AssignStmt) {
	for i, lhs := range n.Lhs {
		obj := st.lhsObj(lhs)
		if obj == nil || obj.Parent() != st.fi.Pkg.Types.Scope() {
			continue
		}
		var o originSet
		if len(n.Rhs) == 1 && len(n.Lhs) > 1 {
			if call, ok := ast.Unparen(n.Rhs[0]).(*ast.CallExpr); ok {
				o = st.callResultOrigins(call, i)
			} else {
				o = st.exprOrigins(n.Rhs[0])
			}
		} else if i < len(n.Rhs) {
			o = st.exprOrigins(n.Rhs[i])
		}
		if o&freshOrigin != 0 {
			st.finds = append(st.finds, engineFinding{
				pkg: st.fi.Pkg,
				pos: n.Pos(),
				msg: fmt.Sprintf("secret escapes to package-level variable %q (host-visible memory)", obj.Name()),
			})
		}
		for pi := 0; pi < len(st.sum.ParamToResults); pi++ {
			if o&paramOrigin(pi) != 0 {
				st.sum.SinkParams |= paramOrigin(pi)
				if _, ok := st.sum.SinkVia[pi]; !ok {
					st.sum.SinkVia[pi] = "package-level variable " + obj.Name()
				}
			}
		}
	}
}

// scanReturn records which origins flow out through which results.
func (st *funcState) scanReturn(n *ast.ReturnStmt) {
	record := func(res int, o originSet) {
		if res >= 32 || o == 0 {
			return
		}
		if o&freshOrigin != 0 {
			st.sum.FreshResults |= 1 << uint(res)
		}
		for pi := 0; pi < len(st.sum.ParamToResults); pi++ {
			if o&paramOrigin(pi) != 0 {
				st.sum.ParamToResults[pi] |= 1 << uint(res)
			}
		}
	}
	if len(n.Results) == 0 {
		// Bare return: named results carry their accumulated origins.
		for obj, res := range st.results {
			record(res, st.origins[obj])
		}
		return
	}
	if len(n.Results) == 1 {
		if call, ok := ast.Unparen(n.Results[0]).(*ast.CallExpr); ok {
			if sig, ok := st.fi.Obj.Type().(*types.Signature); ok && sig.Results().Len() > 1 {
				for res := 0; res < sig.Results().Len(); res++ {
					record(res, st.callResultOrigins(call, res))
				}
				return
			}
		}
	}
	for res, expr := range n.Results {
		record(res, st.exprOrigins(expr))
	}
}

// scanCallLocks records mutex acquisitions: the function's own
// Lock/RLock calls plus its module callees' transitive sets.
func (st *funcState) scanCallLocks(call *ast.CallExpr) {
	name := calleeName(call)
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok && (name == "Lock" || name == "RLock") {
		if lk := lockKey(st.info, sel.X); lk != "" {
			st.acquire[lk] = true
		}
		return
	}
	if callee := st.e.StaticCallee(st.fi.Pkg, call); callee != nil {
		for _, k := range callee.Summary.Acquires {
			st.acquire[k] = true
		}
	}
}

// callBlockDesc reports whether a call may block the calling goroutine.
func (st *funcState) callBlockDesc(call *ast.CallExpr) (string, bool) {
	return st.e.CallBlockDesc(st.fi.Pkg, call)
}

// CallBlockDesc reports whether a call may block the calling goroutine:
// time.Sleep, sync waits, connection I/O, a Vault wipe (an enclave
// transition), or a module callee whose summary blocks. Lock and Unlock
// themselves are excluded — the lock-order analyzer owns lock/lock
// interactions.
func (e *Engine) CallBlockDesc(pkg *Package, call *ast.CallExpr) (string, bool) {
	info := pkg.Info
	name := calleeName(call)
	cpkg := calleePkg(info, call)
	switch {
	case cpkg == "time" && name == "Sleep":
		return "time.Sleep", true
	case name == "Lock" || name == "RLock" || name == "Unlock" || name == "RUnlock":
		return "", false
	}
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if _, isMethod := info.Selections[sel]; isMethod {
			tv := info.Types[sel.X]
			if vaultWipeMethods[name] && isVaultType(tv.Type) {
				return "vault wipe (" + name + ")", true
			}
			switch name {
			case "Wait":
				// Only WaitGroup: Cond.Wait releases its mutex while
				// waiting, so it neither stalls lock holders nor counts
				// as held-across-blocking.
				if named, ok := derefNamed(tv.Type); ok {
					tn := named.Obj()
					if tn.Pkg() != nil && tn.Pkg().Path() == "sync" && tn.Name() == "WaitGroup" {
						return "sync.WaitGroup.Wait", true
					}
				}
			case "Read", "Write", "ReadFull", "ReadFrom", "WriteTo", "Flush":
				if isConnLike(tv.Type) {
					return "connection I/O (" + name + ")", true
				}
			}
		}
	}
	if callee := e.StaticCallee(pkg, call); callee != nil && callee.Summary.Blocks {
		// Keep the description anchored at the root cause: "<op> in
		// <func>" stays stable however deep the call chain grows.
		desc := callee.Summary.BlockDesc
		if !strings.Contains(desc, " in ") {
			desc += " in " + funcDisplay(callee)
		}
		return desc, true
	}
	return "", false
}

// shortPos renders a position as base-filename:line, compact enough to
// embed in another diagnostic's message.
func shortPos(fset *token.FileSet, pos token.Pos) string {
	p := fset.Position(pos)
	return fmt.Sprintf("%s:%d", filepath.Base(p.Filename), p.Line)
}

// lockKey names a mutex for cross-function identity: a struct field
// mutex keys as "(pkg.Type).field", a package-level mutex as
// "pkg.var". Locks reached through locals, parameters, or function
// results have no stable identity and return "" (untracked — a
// documented soundness limit that exempts I/O-serialization mutexes
// passed by pointer).
func lockKey(info *types.Info, e ast.Expr) string {
	e = ast.Unparen(e)
	if star, ok := e.(*ast.StarExpr); ok {
		e = star.X
	}
	switch e := e.(type) {
	case *ast.SelectorExpr:
		s, ok := info.Selections[e]
		if !ok || s.Kind() != types.FieldVal {
			return ""
		}
		rt := s.Recv()
		if p, ok := rt.(*types.Pointer); ok {
			rt = p.Elem()
		}
		named, ok := rt.(*types.Named)
		if !ok {
			return ""
		}
		tn := named.Obj()
		pkgPath := ""
		if tn.Pkg() != nil {
			pkgPath = tn.Pkg().Path() + "."
		}
		return "(" + pkgPath + tn.Name() + ")." + e.Sel.Name
	case *ast.Ident:
		obj := info.Uses[e]
		if obj == nil {
			return ""
		}
		if v, ok := obj.(*types.Var); ok && v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
			return v.Pkg().Path() + "." + v.Name()
		}
	}
	return ""
}

// isVaultType reports whether a type is (or points to) a secret vault.
func isVaultType(t types.Type) bool {
	named, ok := derefNamed(t)
	if !ok {
		return false
	}
	return strings.Contains(named.Obj().Name(), "Vault")
}

func derefNamed(t types.Type) (*types.Named, bool) {
	if t == nil {
		return nil, false
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	return named, ok
}

// funcDisplay renders a function's name for diagnostics:
// "(*core.Session).Close" or "core.ClassifyError".
func funcDisplay(fi *FuncInfo) string {
	obj := fi.Obj
	sig := obj.Type().(*types.Signature)
	short := func(t types.Type) string {
		return types.TypeString(t, func(p *types.Package) string { return p.Name() })
	}
	if recv := sig.Recv(); recv != nil {
		return "(" + short(recv.Type()) + ")." + obj.Name()
	}
	if obj.Pkg() != nil {
		return obj.Pkg().Name() + "." + obj.Name()
	}
	return obj.Name()
}
