package analysis

import (
	"go/ast"
	"go/types"
)

// EnclaveBoundary enforces the attested-boundary property the paper's
// security argument rests on (§3.3/§4, and Knauth et al.'s
// attestation-TLS integration): host-side code reaches enclave secrets
// only through the ecall API, and the secrets never land in
// host-visible memory. Two rules:
//
//  1. The secret and memory-handle parameters of Vault.UseSecret and
//     Enclave.Enter callbacks must not escape the callback: assigning
//     the parameter (or a slice of it, an append of it, or a copy of
//     its bytes) to anything declared outside the callback moves the
//     secret into host memory.
//
//  2. Vault.DumpHostMemory models the MIP adversary's memory read; only
//     the adversary harness (internal/adversary) and tests may call it.
var EnclaveBoundary = &Analyzer{
	Name: "enclaveboundary",
	Doc:  "enclave secrets stay inside ecall callbacks; host memory dumps are adversary-only",
	Run:  runEnclaveBoundary,
}

// enclaveCallbackMethods are the ecall entry points whose callback
// parameters carry enclave-resident secrets.
var enclaveCallbackMethods = map[string]bool{"UseSecret": true, "Enter": true}

// dumpAllowedPackages may call DumpHostMemory: the attack harness that
// exists to model the adversary.
var dumpAllowedPackages = map[string]bool{"repro/internal/adversary": true}

func runEnclaveBoundary(pass *Pass) {
	for _, file := range pass.Pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
			if !ok {
				return true
			}
			switch {
			case sel.Sel.Name == "DumpHostMemory":
				if !dumpAllowedPackages[pass.Pkg.Path] {
					pass.Reportf(call.Pos(), "DumpHostMemory models the MIP adversary's memory read (§3.1); only the adversary harness and tests may call it")
				}
			case enclaveCallbackMethods[sel.Sel.Name]:
				checkCallbackLeaks(pass, sel.Sel.Name, call)
			}
			return true
		})
	}
}

// checkCallbackLeaks inspects the func-literal argument of an ecall for
// parameter escapes.
func checkCallbackLeaks(pass *Pass, method string, call *ast.CallExpr) {
	if len(call.Args) == 0 {
		return
	}
	lit, ok := ast.Unparen(call.Args[len(call.Args)-1]).(*ast.FuncLit)
	if !ok || lit.Type.Params == nil {
		return
	}
	params := make(map[types.Object]bool)
	for _, field := range lit.Type.Params.List {
		for _, name := range field.Names {
			if obj := pass.Pkg.Info.Defs[name]; obj != nil {
				params[obj] = true
			}
		}
	}
	if len(params) == 0 {
		return
	}

	declaredOutside := func(e ast.Expr) bool {
		id := rootIdent(e)
		if id == nil {
			return true // selectors on captured state, indexed maps, …
		}
		obj := pass.Pkg.Info.Uses[id]
		if obj == nil {
			obj = pass.Pkg.Info.Defs[id]
		}
		if obj == nil {
			return false
		}
		return obj.Pos() < lit.Pos() || obj.Pos() > lit.End()
	}

	ast.Inspect(lit.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i, rhs := range n.Rhs {
				if i >= len(n.Lhs) {
					break
				}
				if param, ok := aliasesParam(pass.Pkg.Info, params, rhs); ok && declaredOutside(n.Lhs[i]) {
					pass.Reportf(n.Pos(), "secret parameter %q escapes the %s callback into host-visible memory", param, method)
				}
			}
		case *ast.SendStmt:
			if param, ok := aliasesParam(pass.Pkg.Info, params, n.Value); ok && declaredOutside(n.Chan) {
				pass.Reportf(n.Pos(), "secret parameter %q escapes the %s callback over a host-side channel", param, method)
			}
		case *ast.CallExpr:
			if calleeName(n) == "copy" && len(n.Args) == 2 {
				if param, ok := aliasesParam(pass.Pkg.Info, params, n.Args[1]); ok && declaredOutside(n.Args[0]) {
					pass.Reportf(n.Pos(), "secret parameter %q copied out of the %s callback into host-visible memory", param, method)
				}
			}
		}
		return true
	})
}

// aliasesParam reports whether an expression aliases or reproduces the
// bytes of a callback parameter: the parameter itself, a slice or
// index of it, or an append dragging it along.
func aliasesParam(info *types.Info, params map[types.Object]bool, e ast.Expr) (string, bool) {
	e = ast.Unparen(e)
	if call, ok := e.(*ast.CallExpr); ok {
		if calleeName(call) == "append" {
			for _, arg := range call.Args {
				if name, ok := aliasesParam(info, params, arg); ok {
					return name, true
				}
			}
		}
		return "", false
	}
	id := rootIdent(e)
	if id == nil {
		return "", false
	}
	obj := info.Uses[id]
	if obj == nil {
		obj = info.Defs[id]
	}
	if obj != nil && params[obj] {
		return id.Name, true
	}
	return "", false
}
