package analysis

import (
	"go/token"
	"strings"
)

// ignorePrefix introduces a suppression directive comment.
const ignorePrefix = "//lint:ignore"

// ignoreDirective is one parsed //lint:ignore comment.
type ignoreDirective struct {
	file   string
	line   int
	checks []string // check names, comma-separated in the source
	reason string
}

// matches reports whether the directive suppresses the named check.
func (d *ignoreDirective) matches(check string) bool {
	for _, c := range d.checks {
		if c == check {
			return true
		}
	}
	return false
}

// ignoreIndex resolves diagnostics against the suppression directives
// of the analyzed packages. A directive applies to findings on its own
// line or on the line immediately below it (the comment-above-the-code
// convention).
type ignoreIndex struct {
	// byFileLine maps file → line → directives anchored there.
	byFileLine map[string]map[int][]*ignoreDirective
	// problems are malformed directives (no check, empty reason),
	// reported as findings in their own right.
	problems []Diagnostic
}

func newIgnoreIndex(pkgs []*Package) *ignoreIndex {
	idx := &ignoreIndex{byFileLine: make(map[string]map[int][]*ignoreDirective)}
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					idx.add(pkg.Fset, c.Slash, c.Text)
				}
			}
		}
	}
	return idx
}

// add parses one comment; non-directives are ignored.
func (idx *ignoreIndex) add(fset *token.FileSet, pos token.Pos, text string) {
	if !strings.HasPrefix(text, ignorePrefix) {
		return
	}
	position := fset.Position(pos)
	rest := strings.TrimSpace(strings.TrimPrefix(text, ignorePrefix))
	checks, reason, _ := strings.Cut(rest, " ")
	reason = strings.TrimSpace(reason)
	if checks == "" || reason == "" {
		idx.problems = append(idx.problems, Diagnostic{
			Check:   "lintdirective",
			Pos:     position,
			Message: "malformed //lint:ignore directive: need \"//lint:ignore <check>[,<check>] <reason>\" with a non-empty reason",
		})
		return
	}
	d := &ignoreDirective{
		file:   position.Filename,
		line:   position.Line,
		checks: strings.Split(checks, ","),
		reason: reason,
	}
	lines := idx.byFileLine[d.file]
	if lines == nil {
		lines = make(map[int][]*ignoreDirective)
		idx.byFileLine[d.file] = lines
	}
	lines[d.line] = append(lines[d.line], d)
}

// suppressed reports whether a directive covers the diagnostic.
func (idx *ignoreIndex) suppressed(d Diagnostic) bool {
	lines := idx.byFileLine[d.Pos.Filename]
	if lines == nil {
		return false
	}
	for _, anchor := range []int{d.Pos.Line, d.Pos.Line - 1} {
		for _, dir := range lines[anchor] {
			if dir.matches(d.Check) {
				return true
			}
		}
	}
	return false
}
