package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// timingSensitiveName reports whether an identifier denotes a value
// whose comparison leaks through timing: keys, MACs, secrets, Finished
// verify_data. Public-key material is excluded — its comparison is not
// an oracle.
func timingSensitiveName(name string) bool {
	n := strings.ToLower(name)
	if strings.Contains(n, "pub") {
		return false
	}
	return strings.Contains(n, "secret") ||
		strings.Contains(n, "master") ||
		strings.Contains(n, "verifydata") ||
		strings.HasSuffix(n, "key") ||
		strings.HasSuffix(n, "keys") ||
		strings.HasSuffix(n, "mac")
}

// confidentialName reports whether a struct-field identifier denotes
// key material that must not outlive its owner: keys, secrets, and
// private halves of signing keypairs (the delegation signing key, the
// attestation authority key), but not wire-visible artifacts like MACs
// or verify_data.
func confidentialName(name string) bool {
	n := strings.ToLower(name)
	if strings.Contains(n, "pub") {
		return false
	}
	return strings.Contains(n, "secret") ||
		strings.Contains(n, "master") ||
		strings.Contains(n, "priv") ||
		strings.HasSuffix(n, "key") ||
		strings.HasSuffix(n, "keys")
}

// exprName extracts the best-effort identifier a value expression is
// known by: the variable, field, or producing function's name.
func exprName(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return e.Sel.Name
	case *ast.IndexExpr:
		return exprName(e.X)
	case *ast.SliceExpr:
		return exprName(e.X)
	case *ast.CallExpr:
		return exprName(e.Fun)
	case *ast.ParenExpr:
		return exprName(e.X)
	case *ast.StarExpr:
		return exprName(e.X)
	case *ast.UnaryExpr:
		return exprName(e.X)
	}
	return ""
}

// rootIdent returns the identifier at the base of a chain of
// selector/index/slice/paren expressions, or nil.
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.UnaryExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// calleeName returns the bare name of a call's target function or
// method ("Equal" for bytes.Equal, "Wipe" for km.Wipe).
func calleeName(call *ast.CallExpr) string {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		return fun.Sel.Name
	}
	return ""
}

// calleePkg resolves the package an imported call target comes from
// ("bytes" for bytes.Equal), using type info when available and the
// qualifier's spelling otherwise. Empty for method calls and locals.
func calleePkg(info *types.Info, call *ast.CallExpr) string {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return ""
	}
	if obj, ok := info.Uses[id]; ok {
		if pn, ok := obj.(*types.PkgName); ok {
			return pn.Imported().Path()
		}
		return "" // a variable: method call, not a package function
	}
	return id.Name // no type info: trust the qualifier's spelling
}

// isPublicKeyType reports whether a type is a named public-key type
// (ed25519.PublicKey and friends): public material is exempt from the
// secrecy invariants even when a field or variable name says "key".
func isPublicKeyType(t types.Type) bool {
	n, ok := t.(*types.Named)
	return ok && strings.Contains(n.Obj().Name(), "Public")
}

// isByteSlice reports whether a type's underlying type is []byte.
func isByteSlice(t types.Type) bool {
	if t == nil {
		return false
	}
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && b.Kind() == types.Byte
}

// isByteArray reports whether a type's underlying type is a
// fixed-size byte array ([32]byte and friends).
func isByteArray(t types.Type) bool {
	if t == nil {
		return false
	}
	a, ok := t.Underlying().(*types.Array)
	if !ok {
		return false
	}
	b, ok := a.Elem().Underlying().(*types.Basic)
	return ok && b.Kind() == types.Byte
}

// isByteSliceMap reports whether a type's underlying type is a map
// with []byte values.
func isByteSliceMap(t types.Type) bool {
	if t == nil {
		return false
	}
	m, ok := t.Underlying().(*types.Map)
	return ok && isByteSlice(m.Elem())
}

// isComparableSecretCarrier reports whether a type can carry secret
// bytes through a == comparison: strings and byte arrays.
func isComparableSecretCarrier(t types.Type) bool {
	if t == nil {
		return false
	}
	switch u := t.Underlying().(type) {
	case *types.Basic:
		return u.Info()&types.IsString != 0
	case *types.Array:
		b, ok := u.Elem().Underlying().(*types.Basic)
		return ok && b.Kind() == types.Byte
	}
	return false
}

// walkWithStack traverses the AST under n, invoking f with each node
// and the stack of its ancestors (outermost first, excluding n itself
// at the time of its own visit).
func walkWithStack(n ast.Node, f func(n ast.Node, stack []ast.Node)) {
	var stack []ast.Node
	ast.Inspect(n, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return false
		}
		f(n, stack)
		stack = append(stack, n)
		return true
	})
}
