// Package analysis is a stdlib-only static-analysis framework (go/ast +
// go/parser + go/types) that machine-checks the protocol invariants the
// Go type system cannot see: constant-time comparison of key material,
// key zeroization on teardown, pooled-buffer ownership (DESIGN.md §6),
// the enclave secrecy boundary, and crypto-grade randomness. The
// cmd/mbtls-lint driver runs every analyzer over the module; lint_test.go
// runs them over golden fixtures and pins the repo itself clean.
//
// Findings are suppressed at the use site with a justification comment
// on the flagged line or the line directly above it:
//
//	//lint:ignore <check> <reason>
//
// The reason is mandatory: a suppression without one is itself reported
// (as check "lintdirective"), so every deviation from an invariant stays
// documented where it happens.
package analysis

import (
	"fmt"
	"go/token"
	"sort"
)

// Diagnostic is one finding: a position, the check that produced it,
// and a human-readable message.
type Diagnostic struct {
	Check   string
	Pos     token.Position
	Message string
	// Via is the interprocedural provenance of the finding — the chain
	// of callees a flow traversed before reaching the reported site
	// ("(*core.Session).describe → fmt.Errorf"). Empty for findings
	// whose evidence is entirely local to the reported line.
	Via string
}

// String formats the diagnostic in the conventional file:line:col form.
func (d Diagnostic) String() string {
	if d.Via != "" {
		return fmt.Sprintf("%s:%d:%d: %s (via %s) [%s]", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Message, d.Via, d.Check)
	}
	return fmt.Sprintf("%s:%d:%d: %s [%s]", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Message, d.Check)
}

// Analyzer is one named invariant check.
type Analyzer struct {
	// Name is the check identifier used in output and in
	// //lint:ignore directives.
	Name string
	// Doc is a one-line description of the invariant the check
	// enforces.
	Doc string
	// NeedsEngine marks analyzers that consume the interprocedural
	// engine (call graph + summaries); Run builds it once, shared, when
	// any selected analyzer needs it.
	NeedsEngine bool
	// Run inspects one package and reports findings through the pass.
	Run func(*Pass)
}

// Pass carries one analyzer's view of one package.
type Pass struct {
	Analyzer *Analyzer
	Pkg      *Package
	// Engine is the shared interprocedural layer, non-nil iff the
	// analyzer declared NeedsEngine.
	Engine *Engine
	diags  *[]Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Check:   p.Analyzer.Name,
		Pos:     p.Pkg.Fset.Position(pos),
		Message: fmt.Sprintf(format, args...),
	})
}

// ReportViaf records a finding at pos with interprocedural provenance.
func (p *Pass) ReportViaf(pos token.Pos, via, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Check:   p.Analyzer.Name,
		Pos:     p.Pkg.Fset.Position(pos),
		Message: fmt.Sprintf(format, args...),
		Via:     via,
	})
}

// Analyzers returns the full analyzer suite in stable order.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		SecretCompare,
		KeyWipe,
		BufOwnership,
		EnclaveBoundary,
		CryptoRand,
		SecretFlow,
		AtomicField,
		LockOrder,
		ErrorClass,
	}
}

// Run executes the analyzers over the packages, applies //lint:ignore
// suppressions, and returns the surviving diagnostics sorted by
// position. The packages are loaded and type-checked once (Load) and
// the interprocedural engine is built once, whatever subset of
// analyzers runs. Malformed directives surface as "lintdirective"
// findings.
func Run(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	var engine *Engine
	for _, a := range analyzers {
		if a.NeedsEngine {
			engine = NewEngine(pkgs)
			break
		}
	}

	var raw []Diagnostic
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			pass := &Pass{Analyzer: a, Pkg: pkg, diags: &raw}
			if a.NeedsEngine {
				pass.Engine = engine
			}
			a.Run(pass)
		}
	}

	var out []Diagnostic
	index := newIgnoreIndex(pkgs)
	out = append(out, index.problems...)
	for _, d := range raw {
		if !index.suppressed(d) {
			out = append(out, d)
		}
	}
	SortDiagnostics(out)
	return out
}

// SortDiagnostics orders diagnostics deterministically — by file, line,
// column, then check name — so repeated runs, CI diffs, and the golden
// repo-clean output never depend on map-iteration order. Drivers must
// re-sort after merging diagnostics from separate sources (Run,
// IgnoreBudget).
func SortDiagnostics(ds []Diagnostic) {
	sort.Slice(ds, func(i, j int) bool {
		a, b := ds[i], ds[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Check != b.Check {
			return a.Check < b.Check
		}
		return a.Message < b.Message
	})
}
