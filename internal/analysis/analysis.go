// Package analysis is a stdlib-only static-analysis framework (go/ast +
// go/parser + go/types) that machine-checks the protocol invariants the
// Go type system cannot see: constant-time comparison of key material,
// key zeroization on teardown, pooled-buffer ownership (DESIGN.md §6),
// the enclave secrecy boundary, and crypto-grade randomness. The
// cmd/mbtls-lint driver runs every analyzer over the module; lint_test.go
// runs them over golden fixtures and pins the repo itself clean.
//
// Findings are suppressed at the use site with a justification comment
// on the flagged line or the line directly above it:
//
//	//lint:ignore <check> <reason>
//
// The reason is mandatory: a suppression without one is itself reported
// (as check "lintdirective"), so every deviation from an invariant stays
// documented where it happens.
package analysis

import (
	"fmt"
	"go/token"
	"sort"
)

// Diagnostic is one finding: a position, the check that produced it,
// and a human-readable message.
type Diagnostic struct {
	Check   string
	Pos     token.Position
	Message string
}

// String formats the diagnostic in the conventional file:line:col form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s [%s]", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Message, d.Check)
}

// Analyzer is one named invariant check.
type Analyzer struct {
	// Name is the check identifier used in output and in
	// //lint:ignore directives.
	Name string
	// Doc is a one-line description of the invariant the check
	// enforces.
	Doc string
	// Run inspects one package and reports findings through the pass.
	Run func(*Pass)
}

// Pass carries one analyzer's view of one package.
type Pass struct {
	Analyzer *Analyzer
	Pkg      *Package
	diags    *[]Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Check:   p.Analyzer.Name,
		Pos:     p.Pkg.Fset.Position(pos),
		Message: fmt.Sprintf(format, args...),
	})
}

// Analyzers returns the full analyzer suite in stable order.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		SecretCompare,
		KeyWipe,
		BufOwnership,
		EnclaveBoundary,
		CryptoRand,
	}
}

// Run executes the analyzers over the packages, applies //lint:ignore
// suppressions, and returns the surviving diagnostics sorted by
// position. Malformed directives surface as "lintdirective" findings.
func Run(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	var raw []Diagnostic
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			pass := &Pass{Analyzer: a, Pkg: pkg, diags: &raw}
			a.Run(pass)
		}
	}

	var out []Diagnostic
	index := newIgnoreIndex(pkgs)
	out = append(out, index.problems...)
	for _, d := range raw {
		if !index.suppressed(d) {
			out = append(out, d)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Check < b.Check
	})
	return out
}
