package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// This file builds the module-wide call graph the interprocedural
// analyzers (secretflow, lockorder) run on. The graph is stdlib-only:
// function declarations are indexed across every loaded package, call
// expressions resolve through go/types, and the two dynamic-dispatch
// holes are closed conservatively — an interface method call fans out
// to every module method that implements it, and calls through function
// values (or reflection) resolve to nothing, which the taint engine
// treats as worst-case propagation (see summary.go). DESIGN.md §8
// documents these soundness limits.

// FuncInfo is one function or method declared in the module, with its
// computed dataflow summary.
type FuncInfo struct {
	// Obj is the go/types object; the engine's canonical identity.
	Obj *types.Func
	// Decl is the syntax, including the body the summary was computed
	// from. Nil for bodyless declarations (assembly stubs).
	Decl *ast.FuncDecl
	// Pkg is the declaring package.
	Pkg *Package
	// Summary is the function's dataflow summary (see summary.go).
	Summary Summary
}

// Engine is the shared interprocedural layer: one per Run, built from
// the same single load/type-check pass every analyzer consumes.
type Engine struct {
	// Pkgs are the analyzed packages.
	Pkgs []*Package
	// Funcs indexes every module function declaration by its object.
	Funcs map[*types.Func]*FuncInfo
	// order holds Funcs in deterministic (position) order for the
	// fixpoint iteration and tests.
	order []*FuncInfo
	// methods indexes module methods by name, for interface-dispatch
	// fan-out.
	methods map[string][]*FuncInfo

	// atomicVars indexes every variable (struct field or package-level
	// var) that some sync/atomic call takes the address of, anywhere in
	// the module, mapped to the first such site. The atomicfield
	// analyzer holds every other access to the same bar.
	atomicVars map[*types.Var]token.Pos

	// secretFindings are the sink reports collected while summarizing
	// (see summary.go); the secretflow analyzer emits the ones in its
	// package.
	secretFindings []engineFinding
}

// engineFinding is one taint-reaches-sink event found during summary
// computation.
type engineFinding struct {
	pkg *Package
	pos token.Pos
	msg string
	// via is the interprocedural provenance: the chain of callees the
	// taint traversed before reaching the sink, empty for a flow
	// contained in one function.
	via string
}

// NewEngine indexes the packages' functions and computes their
// summaries to a fixpoint.
func NewEngine(pkgs []*Package) *Engine {
	e := &Engine{
		Pkgs:       pkgs,
		Funcs:      make(map[*types.Func]*FuncInfo),
		methods:    make(map[string][]*FuncInfo),
		atomicVars: make(map[*types.Var]token.Pos),
	}
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok {
					continue
				}
				obj, _ := pkg.Info.Defs[fd.Name].(*types.Func)
				if obj == nil {
					continue
				}
				fi := &FuncInfo{Obj: obj, Decl: fd, Pkg: pkg}
				e.Funcs[obj] = fi
				e.order = append(e.order, fi)
				if fd.Recv != nil {
					e.methods[fd.Name.Name] = append(e.methods[fd.Name.Name], fi)
				}
			}
		}
	}
	for _, pkg := range pkgs {
		e.indexAtomicAccesses(pkg)
	}
	e.computeSummaries()
	return e
}

// indexAtomicAccesses records every variable whose address is passed to
// a sync/atomic function. &x.f and &pkgVar operands both count; the
// typed sync/atomic wrapper types (atomic.Uint64 and friends) need no
// tracking — the type system already forbids plain access to them.
func (e *Engine) indexAtomicAccesses(pkg *Package) {
	for _, file := range pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || calleePkg(pkg.Info, call) != "sync/atomic" {
				return true
			}
			for _, arg := range call.Args {
				un, ok := ast.Unparen(arg).(*ast.UnaryExpr)
				if !ok || un.Op != token.AND {
					continue
				}
				var v *types.Var
				switch x := ast.Unparen(un.X).(type) {
				case *ast.SelectorExpr:
					if s, ok := pkg.Info.Selections[x]; ok && s.Kind() == types.FieldVal {
						v, _ = s.Obj().(*types.Var)
					}
				case *ast.Ident:
					v, _ = pkg.Info.Uses[x].(*types.Var)
				}
				if v == nil {
					continue
				}
				if _, seen := e.atomicVars[v]; !seen {
					e.atomicVars[v] = un.Pos()
				}
			}
			return true
		})
	}
}

// CalleeObj resolves a call expression to the *types.Func it invokes,
// static or interface, or nil for calls through function values and
// builtins.
func CalleeObj(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		f, _ := info.Uses[fun].(*types.Func)
		return f
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			f, _ := sel.Obj().(*types.Func)
			return f
		}
		// Package-qualified function (fmt.Errorf) — not a selection.
		f, _ := info.Uses[fun.Sel].(*types.Func)
		return f
	}
	return nil
}

// StaticCallee resolves a call to the module function it statically
// invokes, or nil for interface dispatch, function values, builtins,
// and the stdlib. The lock analyses (Acquires, Blocks, lockorder's
// transitive checks) propagate through static calls only: fanning a
// conn.Write out to every module Write method would report deadlocks
// against call paths that cannot happen. Taint propagation keeps the
// conservative fan-out (Callees) — there a missed path is a missed
// leak, and a spurious one is killed by the type gate.
func (e *Engine) StaticCallee(pkg *Package, call *ast.CallExpr) *FuncInfo {
	obj := CalleeObj(pkg.Info, call)
	if obj == nil {
		return nil
	}
	return e.Funcs[obj]
}

// Callees resolves a call to the module FuncInfos it may reach. A
// static call to a module function yields exactly that function; an
// interface method call fans out to every module method with the same
// name whose receiver implements the interface; anything else (stdlib,
// function values) yields nil.
func (e *Engine) Callees(pkg *Package, call *ast.CallExpr) []*FuncInfo {
	obj := CalleeObj(pkg.Info, call)
	if obj == nil {
		return nil
	}
	if fi, ok := e.Funcs[obj]; ok {
		return []*FuncInfo{fi}
	}
	// Interface dispatch: obj is the interface method. Fan out to the
	// implementations (conservative: any module type whose method set
	// includes a method that satisfies it).
	recv := obj.Type().(*types.Signature).Recv()
	if recv == nil {
		return nil
	}
	iface, ok := recv.Type().Underlying().(*types.Interface)
	if !ok {
		return nil
	}
	var out []*FuncInfo
	for _, fi := range e.methods[obj.Name()] {
		frecv := fi.Obj.Type().(*types.Signature).Recv()
		if frecv == nil {
			continue
		}
		if types.Implements(frecv.Type(), iface) || types.Implements(types.NewPointer(frecv.Type()), iface) {
			out = append(out, fi)
		}
	}
	return out
}
