package analysis

import (
	"go/ast"
	"go/token"
)

// SecretCompare enforces constant-time comparison of key material
// (paper §3.1 threat model: on-path and co-resident adversaries can
// time the endpoints). bytes.Equal, reflect.DeepEqual, and == / != are
// early-exit comparisons; secrets must go through crypto/hmac.Equal or
// crypto/subtle.ConstantTimeCompare instead.
var SecretCompare = &Analyzer{
	Name: "secretcompare",
	Doc:  "key material, MACs, and verify_data must be compared in constant time",
	Run:  runSecretCompare,
}

func runSecretCompare(pass *Pass) {
	info := pass.Pkg.Info
	for _, file := range pass.Pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				checkCompareCall(pass, n)
			case *ast.BinaryExpr:
				if n.Op != token.EQL && n.Op != token.NEQ {
					return true
				}
				if isNilLiteral(n.X) || isNilLiteral(n.Y) {
					return true // x == nil presence checks are fine
				}
				for _, side := range []ast.Expr{n.X, n.Y} {
					name := exprName(side)
					if !timingSensitiveName(name) {
						continue
					}
					tv := info.Types[side]
					if tv.Value != nil || isPublicKeyType(tv.Type) {
						continue // constants (labels, tags) and public keys are not secrets
					}
					if isComparableSecretCarrier(tv.Type) {
						pass.Reportf(n.OpPos, "variable-time %s comparison of secret %q; use crypto/subtle.ConstantTimeCompare", n.Op, name)
						return true
					}
				}
			}
			return true
		})
	}
}

// checkCompareCall flags bytes.Equal / bytes.Compare / reflect.DeepEqual
// calls whose operands carry key material.
func checkCompareCall(pass *Pass, call *ast.CallExpr) {
	fn := calleeName(call)
	pkg := calleePkg(pass.Pkg.Info, call)
	variableTime := (pkg == "bytes" && (fn == "Equal" || fn == "Compare")) ||
		(pkg == "reflect" && fn == "DeepEqual")
	if !variableTime {
		return
	}
	for _, arg := range call.Args {
		name := exprName(arg)
		if name == "" || !timingSensitiveName(name) {
			continue
		}
		tv := pass.Pkg.Info.Types[arg]
		if tv.Value != nil || isPublicKeyType(tv.Type) {
			continue // constants (labels, tags) and public keys are not secrets
		}
		if tv.Type != nil && !isByteSlice(tv.Type) && !isComparableSecretCarrier(tv.Type) {
			continue
		}
		pass.Reportf(call.Pos(), "variable-time %s.%s on secret %q; use crypto/hmac.Equal or crypto/subtle.ConstantTimeCompare", pkg, fn, name)
		return
	}
}

// isNilLiteral reports whether the expression is the predeclared nil.
func isNilLiteral(e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	return ok && id.Name == "nil"
}
