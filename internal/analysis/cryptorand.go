package analysis

import "strconv"

// CryptoRand forbids math/rand in non-test code: every nonce, key, and
// ticket in the protocol must come from crypto/rand (the paper's threat
// model grants the adversary full visibility, so guessable randomness
// is a key-recovery vector). The one legitimate exception — the seeded,
// deterministic fault-injection layer in internal/netsim — carries a
// //lint:ignore justification at the import site, keeping the design
// decision documented where it is exercised.
var CryptoRand = &Analyzer{
	Name: "cryptorand",
	Doc:  "math/rand is forbidden outside tests and the annotated netsim fault layer",
	Run:  runCryptoRand,
}

func runCryptoRand(pass *Pass) {
	for _, file := range pass.Pkg.Files {
		for _, imp := range file.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if path == "math/rand" || path == "math/rand/v2" {
				pass.Reportf(imp.Pos(), "import of %s: protocol code must use crypto/rand (seeded determinism layers suppress with //lint:ignore cryptorand <reason>)", path)
			}
		}
	}
}
