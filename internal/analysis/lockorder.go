package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// LockOrder enforces the package's locking discipline on three fronts:
//
//  1. Acquisition order. Every pair of mutexes a package ever holds
//     together must be acquired in one global order; the analyzer
//     records every "lock B while A is held" edge (including edges
//     contributed transitively by module callees' summaries) and
//     reports any cycle. Order inversions are the classic deadlock: two
//     goroutines each holding what the other wants.
//
//  2. No blocking under a state mutex. A shard or session mutex held
//     across a channel operation, a defaultless select, a Vault wipe,
//     connection I/O, time.Sleep, or a blocking module call stalls
//     every other goroutine that needs the lock — the exact shape of
//     the drain regression fixed in the session-host sharding work.
//     Mutexes whose names mark them as I/O-serialization locks (wmu,
//     writeMu, the per-direction downW/upW, the handshake mutex) are
//     exempt: being held across the I/O they serialize is their job.
//
//  3. No recursive acquisition. Locking a mutex already held by the
//     same control-flow path — directly, or through a module callee
//     whose summary acquires it — self-deadlocks (sync.Mutex is not
//     reentrant).
//
// Lock identity is the engine's lockKey: "(pkg.Type).field" or
// "pkg.var". Two distinct instances of the same field (two shards)
// share a key, so same-key re-acquisition is only reported when the
// receiver expression is textually identical; locks reached through
// locals or parameters have no stable identity and are not tracked.
var LockOrder = &Analyzer{
	Name:        "lockorder",
	Doc:         "consistent lock acquisition order; no state mutex held across blocking operations",
	NeedsEngine: true,
	Run:         runLockOrder,
}

// lockSite is one acquisition of a held lock: where, and on which
// receiver expression (to tell two instances of the same field apart).
type lockSite struct {
	pos  token.Pos
	expr string
}

// lockEdge records "to was acquired while from was held", at pos.
type lockEdge struct {
	from, to string
	pos      token.Pos
}

type lockScanner struct {
	pass   *Pass
	e      *Engine
	info   *types.Info
	edges  []lockEdge
	edgeAt map[[2]string]token.Pos
}

func runLockOrder(pass *Pass) {
	ls := &lockScanner{
		pass:   pass,
		e:      pass.Engine,
		info:   pass.Pkg.Info,
		edgeAt: make(map[[2]string]token.Pos),
	}
	for _, file := range pass.Pkg.Files {
		for _, decl := range file.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				ls.walkStmts(fd.Body.List, make(map[string]lockSite))
			}
		}
	}
	ls.reportCycles()
}

// reportCycles finds acquisition-order cycles in the package's edge
// graph and reports each participating edge once, in source order.
func (ls *lockScanner) reportCycles() {
	adj := make(map[string]map[string]bool)
	for _, e := range ls.edges {
		if adj[e.from] == nil {
			adj[e.from] = make(map[string]bool)
		}
		adj[e.from][e.to] = true
	}
	for _, e := range ls.edges {
		if !lockReaches(adj, e.to, e.from) {
			continue
		}
		other := ""
		if p, ok := ls.edgeAt[[2]string{e.to, e.from}]; ok {
			other = fmt.Sprintf(" (opposite order at %s)", shortPos(ls.pass.Pkg.Fset, p))
		}
		ls.pass.Reportf(e.pos, "%s acquired while %s is held, but elsewhere the order is reversed%s; inconsistent lock order can deadlock", e.to, e.from, other)
	}
}

// lockReaches reports whether `to` is reachable from `from` in the
// acquisition-order graph.
func lockReaches(adj map[string]map[string]bool, from, to string) bool {
	seen := make(map[string]bool)
	var dfs func(string) bool
	dfs = func(n string) bool {
		if n == to {
			return true
		}
		if seen[n] {
			return false
		}
		seen[n] = true
		for m := range adj[n] {
			if dfs(m) {
				return true
			}
		}
		return false
	}
	return dfs(from)
}

func copyHeld(held map[string]lockSite) map[string]lockSite {
	out := make(map[string]lockSite, len(held))
	for k, v := range held {
		out[k] = v
	}
	return out
}

func heldKeys(held map[string]lockSite) []string {
	keys := make([]string, 0, len(held))
	for k := range held {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// walkStmts interprets a statement list linearly, threading the
// held-lock set through it. Branches run on copies of the set (a lock
// acquired in only one branch is not assumed held after the join — an
// under-approximation that trades soundness for zero false positives on
// conditional locking).
func (ls *lockScanner) walkStmts(list []ast.Stmt, held map[string]lockSite) {
	for _, s := range list {
		ls.stmt(s, held)
	}
}

func (ls *lockScanner) stmt(s ast.Stmt, held map[string]lockSite) {
	switch s := s.(type) {
	case *ast.ExprStmt:
		ls.expr(s.X, held)
	case *ast.AssignStmt:
		for _, e := range s.Rhs {
			ls.expr(e, held)
		}
		for _, e := range s.Lhs {
			ls.expr(e, held)
		}
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, sp := range gd.Specs {
				if vs, ok := sp.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						ls.expr(v, held)
					}
				}
			}
		}
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			ls.expr(e, held)
		}
	case *ast.IncDecStmt:
		ls.expr(s.X, held)
	case *ast.SendStmt:
		ls.expr(s.Chan, held)
		ls.expr(s.Value, held)
		ls.blockEvent(s.Pos(), "a channel send", held)
	case *ast.GoStmt:
		// The spawned goroutine blocks and locks on its own stack.
	case *ast.DeferStmt:
		// A deferred unlock keeps the mutex held to function exit (it
		// stays in the held set); other deferred work runs at exit and
		// is not interpreted here.
	case *ast.BlockStmt:
		ls.walkStmts(s.List, held)
	case *ast.LabeledStmt:
		ls.stmt(s.Stmt, held)
	case *ast.IfStmt:
		if s.Init != nil {
			ls.stmt(s.Init, held)
		}
		ls.expr(s.Cond, held)
		ls.stmt(s.Body, copyHeld(held))
		if s.Else != nil {
			ls.stmt(s.Else, copyHeld(held))
		}
	case *ast.ForStmt:
		if s.Init != nil {
			ls.stmt(s.Init, held)
		}
		if s.Cond != nil {
			ls.expr(s.Cond, held)
		}
		h := copyHeld(held)
		ls.stmt(s.Body, h)
		if s.Post != nil {
			ls.stmt(s.Post, h)
		}
	case *ast.RangeStmt:
		ls.expr(s.X, held)
		if tv, ok := ls.info.Types[s.X]; ok && tv.Type != nil {
			if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
				ls.blockEvent(s.Pos(), "a range over a channel", held)
			}
		}
		ls.stmt(s.Body, copyHeld(held))
	case *ast.SwitchStmt:
		if s.Init != nil {
			ls.stmt(s.Init, held)
		}
		if s.Tag != nil {
			ls.expr(s.Tag, held)
		}
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				h := copyHeld(held)
				for _, e := range cc.List {
					ls.expr(e, h)
				}
				ls.walkStmts(cc.Body, h)
			}
		}
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			ls.stmt(s.Init, held)
		}
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				ls.walkStmts(cc.Body, copyHeld(held))
			}
		}
	case *ast.SelectStmt:
		if !selectHasDefault(s) {
			ls.blockEvent(s.Pos(), "a select with no default", held)
		}
		// The comm clauses themselves are covered by the select-level
		// event (or non-blocking, with a default); only the bodies run.
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				ls.walkStmts(cc.Body, copyHeld(held))
			}
		}
	}
}

// expr scans an expression for lock operations, channel receives, and
// blocking calls. Function literals are skipped: they block whoever
// eventually calls them, not the function that defines them.
func (ls *lockScanner) expr(x ast.Expr, held map[string]lockSite) {
	if x == nil {
		return
	}
	ast.Inspect(x, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				ls.blockEvent(n.Pos(), "a channel receive", held)
			}
		case *ast.CallExpr:
			ls.call(n, held)
		}
		return true
	})
}

func (ls *lockScanner) call(call *ast.CallExpr, held map[string]lockSite) {
	name := calleeName(call)
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		switch name {
		case "Lock", "RLock":
			if lk := lockKey(ls.info, sel.X); lk != "" {
				ls.acquireLock(call, sel, lk, held)
				return
			}
		case "Unlock", "RUnlock":
			if lk := lockKey(ls.info, sel.X); lk != "" {
				delete(held, lk)
				return
			}
		}
	}
	if desc, blocks := ls.e.CallBlockDesc(ls.pass.Pkg, call); blocks {
		ls.blockEvent(call.Pos(), desc, held)
	}
	if callee := ls.e.StaticCallee(ls.pass.Pkg, call); callee != nil {
		for _, k := range callee.Summary.Acquires {
			if site, ok := held[k]; ok {
				ls.pass.Reportf(call.Pos(), "call to %s may acquire %s, which is already held (locked at %s): possible self-deadlock",
					funcDisplay(callee), k, shortPos(ls.pass.Pkg.Fset, site.pos))
				continue
			}
			ls.addEdges(held, k, call.Pos())
		}
	}
}

func (ls *lockScanner) acquireLock(call *ast.CallExpr, sel *ast.SelectorExpr, lk string, held map[string]lockSite) {
	recv := exprName(sel.X)
	if site, ok := held[lk]; ok {
		if site.expr == recv {
			ls.pass.Reportf(call.Pos(), "%s locked again while already held (since %s); recursive locking self-deadlocks",
				lk, shortPos(ls.pass.Pkg.Fset, site.pos))
		}
		// Same key, different receiver expression: two instances of one
		// field — no stable order identity, record nothing.
		return
	}
	ls.addEdges(held, lk, call.Pos())
	held[lk] = lockSite{pos: call.Pos(), expr: recv}
}

func (ls *lockScanner) addEdges(held map[string]lockSite, to string, pos token.Pos) {
	for _, from := range heldKeys(held) {
		if from == to {
			continue
		}
		k := [2]string{from, to}
		if _, ok := ls.edgeAt[k]; !ok {
			ls.edgeAt[k] = pos
			ls.edges = append(ls.edges, lockEdge{from: from, to: to, pos: pos})
		}
	}
}

// blockEvent reports every non-exempt mutex held across a blocking
// operation.
func (ls *lockScanner) blockEvent(pos token.Pos, desc string, held map[string]lockSite) {
	for _, lk := range heldKeys(held) {
		if ioSerializationLock(lk) {
			continue
		}
		site := held[lk]
		ls.pass.Reportf(pos, "%s (locked at %s) is held across %s; unlock before blocking",
			lk, shortPos(ls.pass.Pkg.Fset, site.pos), desc)
	}
}

// ioSerializationLock reports whether a lock key names a mutex whose
// purpose is serializing an operation — locks that are *supposed* to be
// held across the (possibly blocking) work they serialize. The repo's
// naming convention (enforced here, documented in DESIGN.md §8):
// wmu/rmu, writeMu/readMu, per-direction c2sMu/s2cMu/downW/upW, the
// handshake mutex hsMu, and the one-shot alert mutex alertMu. Plain
// state mutexes (mu, lmu, annMu, ...) get the full no-blocking rule.
func ioSerializationLock(lk string) bool {
	name := lk
	if i := strings.LastIndex(name, "."); i >= 0 {
		name = name[i+1:]
	}
	n := strings.ToLower(name)
	for _, cand := range []string{
		n,
		strings.TrimSuffix(n, "mu"),
		strings.TrimSuffix(n, "mutex"),
		strings.TrimSuffix(n, "lock"),
		strings.TrimSuffix(n, "w"),
	} {
		switch cand {
		case "w", "r", "rw", "read", "write", "io", "send", "recv",
			"c2s", "s2c", "down", "up", "hs", "handshake", "flush", "alert":
			return true
		}
	}
	return false
}
