package analysis

// SecretFlow is the interprocedural secret-taint analyzer: it follows
// key material from its sources through assignments, derivations, and
// calls (using the engine's per-function summaries) and reports when a
// secret reaches a leak sink. Paulson's inductive analysis of TLS
// (arXiv 1907.07559) is the model: secrecy is a *flow* property — no
// single call site is wrong, the path is.
//
// Sources: reads of key-material fields (master/pre-master secrets,
// STEK and ticket keys, KeyMaterial/SessionKeys structs),
// ExportSessionKeys/ExportPrimaryKeys results, and the secret
// parameters of Vault.UseSecret / Enclave.Enter callbacks.
//
// Sinks: fmt/log formatting and errors.New/fmt.Errorf (a secret in an
// error string ends up in operator logs), plaintext writes to
// connection-shaped values (the wire before any sealing), assignments
// to package-level variables (host-visible memory that outlives the
// enclave callback), and any module function whose summary says a
// parameter reaches one of those.
//
// Sanitizers: AEAD seals and asymmetric encryption (wire-safe output),
// digests (a hash of a key is an identifier), constant-time compares
// (public verdict), and wipes.
var SecretFlow = &Analyzer{
	Name:        "secretflow",
	Doc:         "key material must not flow into logs, error strings, plaintext writes, or host-visible globals",
	NeedsEngine: true,
	Run:         runSecretFlow,
}

func runSecretFlow(pass *Pass) {
	seen := make(map[string]bool)
	for _, f := range pass.Engine.secretFindings {
		if f.pkg != pass.Pkg {
			continue
		}
		key := pass.Pkg.Fset.Position(f.pos).String() + "\x00" + f.msg
		if seen[key] {
			continue
		}
		seen[key] = true
		pass.ReportViaf(f.pos, f.via, "%s", f.msg)
	}
}
