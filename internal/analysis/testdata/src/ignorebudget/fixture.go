// Package fixture carries four well-formed suppression directives and
// one malformed one; the budget check must count exactly the four
// well-formed directives, in source order.
package fixture

//lint:ignore secretcompare first justified deviation
var one = 1

//lint:ignore keywipe second justified deviation
var two = 2

//lint:ignore bufownership third justified deviation
var three = 3

//lint:ignore cryptorand fourth justified deviation
var four = 4

//lint:ignore secretcompare
var malformedDoesNotCount = 5
