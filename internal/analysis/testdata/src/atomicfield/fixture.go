// Package fixture exercises the atomicfield analyzer: a field or
// package variable accessed via sync/atomic anywhere must be accessed
// atomically everywhere; fields never touched atomically are free.
package fixture

import "sync/atomic"

type counters struct {
	hits  uint64
	plain uint64
}

func bump(c *counters) {
	atomic.AddUint64(&c.hits, 1)
	c.plain++ // never atomic: clean
}

func read(c *counters) uint64 {
	return c.hits // want "non-atomic access"
}

func write(c *counters) {
	c.hits = 0 // want "non-atomic access"
}

func readAtomically(c *counters) uint64 {
	return atomic.LoadUint64(&c.hits) // the atomic access itself: clean
}

var global uint64

func bumpGlobal() {
	atomic.AddUint64(&global, 1)
}

func readGlobal() uint64 {
	return global // want "non-atomic access"
}
