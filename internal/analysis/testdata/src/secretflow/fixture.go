// Package fixture exercises the secretflow analyzer: key material must
// not reach logs, error strings, plaintext connection writes, or
// package-level variables — directly or through module helpers — while
// sealed, hashed, and non-secret values pass.
package fixture

import (
	"crypto/sha256"
	"fmt"
	"log"
	"net"
)

type session struct {
	masterSecret []byte
	peerName     string
}

// delegationKey mirrors the proxysig signing keypair: the private half
// is key material, the public half is wire-visible.
type delegationKey struct {
	pub  []byte
	priv []byte
}

var hostVisible []byte

// Seal stands in for an AEAD seal: its output is wire-safe.
func Seal(dst, plaintext []byte) []byte { return append(dst, plaintext...) }

// ExportSessionKeys is a source by name, wherever declared.
func ExportSessionKeys() []byte { return make([]byte, 32) }

func direct(s *session) {
	fmt.Printf("ms=%x\n", s.masterSecret) // want "reaches fmt.Printf"
	log.Println(s.peerName)               // non-secret field: clean
}

func indirect(s *session) {
	ms := s.masterSecret
	leak(ms) // want "reaches fixture.leak"
}

func leak(b []byte) {
	log.Printf("%x", b)
}

func wire(s *session, c net.Conn) {
	c.Write(s.masterSecret) // want "reaches plaintext connection write"
}

func sealedWire(s *session, c net.Conn) {
	buf := Seal(nil, s.masterSecret)
	c.Write(buf) // sealed: clean
}

func escape(s *session) {
	hostVisible = s.masterSecret // want "escapes to package-level variable"
}

func fingerprint(s *session) string {
	sum := sha256.Sum256(s.masterSecret)
	return fmt.Sprintf("%x", sum) // digest output is an identifier: clean
}

func describe(s *session) error {
	return fmt.Errorf("bad key %x", s.masterSecret) // want "reaches fmt.Errorf"
}

func exported() {
	keys := ExportSessionKeys()
	log.Printf("%x", keys) // want "reaches log.Printf"
}

type fakeVault struct{}

func (fakeVault) UseSecret(name string, f func(secret []byte)) { f(nil) }

func enclaveCallback(v fakeVault) {
	v.UseSecret("k", func(secret []byte) {
		log.Printf("%x", secret) // want "reaches log.Printf"
	})
}

func enclaveClean(v fakeVault) {
	v.UseSecret("k", func(secret []byte) {
		sum := sha256.Sum256(secret)
		log.Printf("%x", sum) // digest inside the callback: clean
	})
}

func describeDelegation(k *delegationKey) error {
	return fmt.Errorf("delegation key %x", k.priv) // want "reaches fmt.Errorf"
}

func announceDelegation(k *delegationKey) {
	log.Printf("delegating to %x", k.pub) // public half: clean
}
