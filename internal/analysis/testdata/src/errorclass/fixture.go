// Package fixture exercises the errorclass analyzer: defaultless
// switches over the class enum must be exhaustive, boundary wrapping
// must use %w, and every exported *Error type must be referenced by
// ClassifyError. Declaring ClassifyError is what makes this package a
// boundary package.
package fixture

import (
	"errors"
	"fmt"
)

type ErrorClass int

const (
	ClassOK ErrorClass = iota
	ClassTimeout
	ClassOverload
)

type OverloadError struct{ Retry int }

func (e *OverloadError) Error() string { return "overload" }

type StrayError struct{} // want "no ClassifyError references it"

func (e *StrayError) Error() string { return "stray" }

func ClassifyError(err error) ErrorClass {
	var oe *OverloadError
	if errors.As(err, &oe) {
		return ClassOverload
	}
	return ClassOK
}

func describe(c ErrorClass) string {
	switch c { // want "does not handle ClassTimeout"
	case ClassOK:
		return "ok"
	case ClassOverload:
		return "overload"
	}
	return "?"
}

func describeExhaustive(c ErrorClass) string {
	switch c {
	case ClassOK, ClassTimeout, ClassOverload:
		return "known"
	}
	return "?"
}

func describeDefaulted(c ErrorClass) string {
	switch c {
	case ClassOK:
		return "ok"
	default:
		return "other"
	}
}

func wrapErased(err error) error {
	return fmt.Errorf("op failed: %v", err) // want "without %w"
}

func wrapKept(err error) error {
	return fmt.Errorf("op failed: %w", err)
}

func formatValue(n int) error {
	return fmt.Errorf("bad length %d", n)
}
