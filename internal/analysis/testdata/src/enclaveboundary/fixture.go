// Package fixture exercises the enclaveboundary analyzer: callback
// parameter escapes and DumpHostMemory outside the adversary harness.
package fixture

// vault stands in for enclave.Vault / enclave.Enclave.
type vault struct{}

func (vault) UseSecret(name string, f func(secret []byte)) {}

func (vault) Enter(f func(mem []byte)) {}

func (vault) DumpHostMemory() map[string][]byte { return nil }

var hostCopy []byte

func leaks(v vault) {
	v.UseSecret("hop", func(secret []byte) {
		hostCopy = secret // want "escapes the UseSecret callback"
	})
	ch := make(chan []byte, 1)
	v.Enter(func(mem []byte) {
		ch <- mem // want "escapes the Enter callback over a host-side channel"
	})
	_ = v.DumpHostMemory() // want "DumpHostMemory"
}

func copiesOut(v vault) {
	dst := make([]byte, 32)
	v.UseSecret("hop", func(secret []byte) {
		copy(dst, secret) // want "copied out of the UseSecret callback"
	})
}

func staysInside(v vault) {
	v.UseSecret("hop", func(secret []byte) {
		sum := 0
		for _, b := range secret {
			sum += int(b)
		}
		local := make([]byte, len(secret))
		copy(local, secret) // destination lives inside the callback: fine
		_ = local
		_ = sum
	})
}
