// Package fixture holds malformed suppression directives; each is
// reported as a "lintdirective" finding.
package fixture

//lint:ignore secretcompare
var missingReason = 1

//lint:ignore
var missingEverything = 2
