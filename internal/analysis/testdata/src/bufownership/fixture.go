// Package fixture exercises the bufownership analyzer against the
// get/put shapes of DESIGN.md §6.
package fixture

// GetRecordBuf and PutRecordBuf stand in for the tls12 record pool.
func GetRecordBuf() []byte { return make([]byte, 0, 512) }

func PutRecordBuf(b []byte) {}

func balanced(n int) {
	buf := GetRecordBuf()
	buf = append(buf, byte(n))
	PutRecordBuf(buf)
}

func deferredPut() int {
	buf := GetRecordBuf()
	defer PutRecordBuf(buf)
	buf = buf[:0]
	return len(buf)
}

func handoff() []byte {
	buf := GetRecordBuf()
	return buf // ownership moves to the caller: not a leak
}

func leaked() {
	buf := GetRecordBuf() // want "neither returned with PutRecordBuf nor handed off"
	_ = len(buf)
}

func doublePut() {
	buf := GetRecordBuf()
	PutRecordBuf(buf)
	PutRecordBuf(buf) // want "returned to the pool twice"
}

func useAfterPut() byte {
	buf := GetRecordBuf()
	buf = append(buf, 1)
	PutRecordBuf(buf)
	return buf[0] // want "use of pooled buffer buf after PutRecordBuf"
}

func reassigned() {
	buf := GetRecordBuf()
	PutRecordBuf(buf)
	buf = make([]byte, 8) // tracking ends: a fresh, unpooled buffer
	_ = len(buf)
}
