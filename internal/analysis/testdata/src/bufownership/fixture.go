// Package fixture exercises the bufownership analyzer against the
// get/put shapes of DESIGN.md §6.
package fixture

// GetRecordBuf and PutRecordBuf stand in for the tls12 record pool.
func GetRecordBuf() []byte { return make([]byte, 0, 512) }

func PutRecordBuf(b []byte) {}

func balanced(n int) {
	buf := GetRecordBuf()
	buf = append(buf, byte(n))
	PutRecordBuf(buf)
}

func deferredPut() int {
	buf := GetRecordBuf()
	defer PutRecordBuf(buf)
	buf = buf[:0]
	return len(buf)
}

func handoff() []byte {
	buf := GetRecordBuf()
	return buf // ownership moves to the caller: not a leak
}

func leaked() {
	buf := GetRecordBuf() // want "neither returned with PutRecordBuf nor handed off"
	_ = len(buf)
}

func doublePut() {
	buf := GetRecordBuf()
	PutRecordBuf(buf)
	PutRecordBuf(buf) // want "returned to the pool twice"
}

func useAfterPut() byte {
	buf := GetRecordBuf()
	buf = append(buf, 1)
	PutRecordBuf(buf)
	return buf[0] // want "use of pooled buffer buf after PutRecordBuf"
}

func reassigned() {
	buf := GetRecordBuf()
	PutRecordBuf(buf)
	buf = make([]byte, 8) // tracking ends: a fresh, unpooled buffer
	_ = len(buf)
}

// fieldOwner holds its pooled buffer across calls: Get on first use,
// Put on Close — the package-level field rule accepts it because the
// release exists somewhere in the package.
type fieldOwner struct {
	rbuf []byte
}

func (o *fieldOwner) fill() {
	if o.rbuf == nil {
		o.rbuf = GetRecordBuf()
	}
}

func (o *fieldOwner) Close() {
	if o.rbuf != nil {
		PutRecordBuf(o.rbuf)
		o.rbuf = nil
	}
}

// fieldLeaker acquires into a field but no function in the package
// ever releases it.
type fieldLeaker struct {
	buf []byte
}

func (o *fieldLeaker) fill() {
	o.buf = GetRecordBuf() // want "field buf holds a buffer from GetRecordBuf but the package never releases it"
}

// slot models the pipeline's slot-allocation handoff (DESIGN.md §14):
// the buffer is acquired inside the composite literal, owned by the
// new slot's field for its lifetime, and released field-wise when the
// pipeline reclaims its slots.
type slot struct {
	out []byte
}

func newSlot() *slot {
	return &slot{out: GetRecordBuf()}
}

func (s *slot) reclaim() {
	PutRecordBuf(s.out)
	s.out = nil
}

// slotArray owns one pooled buffer per lane, acquired lazily into an
// indexed field and released by index at teardown.
type slotArray struct {
	lanes [2][]byte
}

func (a *slotArray) fill(i int) {
	if a.lanes[i] == nil {
		a.lanes[i] = GetRecordBuf()
	}
}

func (a *slotArray) drain() {
	for i := range a.lanes {
		if a.lanes[i] != nil {
			PutRecordBuf(a.lanes[i])
			a.lanes[i] = nil
		}
	}
}

// slotLeaker acquires through a composite literal but the package
// never releases the field.
type slotLeaker struct {
	held []byte
}

func newSlotLeaker() *slotLeaker {
	return &slotLeaker{
		held: GetRecordBuf(), // want "field held holds a buffer from GetRecordBuf but the package never releases it"
	}
}
