// Package fixture exercises the lockorder analyzer: consistent
// acquisition order, no state mutex held across blocking operations
// (I/O-serialization mutexes are name-exempt), and no recursive
// acquisition — direct or through a callee.
package fixture

import (
	"net"
	"sync"
)

type shard struct {
	mu  sync.Mutex
	amu sync.Mutex
	bmu sync.Mutex
	wmu sync.Mutex
	ch  chan int
	n   int
}

func (s *shard) sendUnderLock() {
	s.mu.Lock()
	s.ch <- 1 // want "held across a channel send"
	s.mu.Unlock()
}

func (s *shard) sendAfterUnlock() {
	s.mu.Lock()
	s.n++
	s.mu.Unlock()
	s.ch <- 1 // lock released first: clean
}

func (s *shard) ioSerialized(c net.Conn, b []byte) {
	s.wmu.Lock()
	defer s.wmu.Unlock()
	c.Write(b) // wmu is a write-serialization lock: clean
}

func (s *shard) stateAcrossIO(c net.Conn, b []byte) {
	s.mu.Lock()
	defer s.mu.Unlock()
	c.Write(b) // want "held across connection I/O"
}

func (s *shard) orderAB() {
	s.amu.Lock()
	s.bmu.Lock() // want "inconsistent lock order"
	s.bmu.Unlock()
	s.amu.Unlock()
}

func (s *shard) orderBA() {
	s.bmu.Lock()
	s.amu.Lock() // want "inconsistent lock order"
	s.amu.Unlock()
	s.bmu.Unlock()
}

func (s *shard) recursive() {
	s.mu.Lock()
	s.mu.Lock() // want "recursive locking self-deadlocks"
	s.mu.Unlock()
	s.mu.Unlock()
}

func (s *shard) lockedHelper() {
	s.mu.Lock()
	s.n++
	s.mu.Unlock()
}

func (s *shard) callsHelperUnderLock() {
	s.mu.Lock()
	s.lockedHelper() // want "possible self-deadlock"
	s.mu.Unlock()
}

func (s *shard) blocksInside() {
	<-s.ch
}

func (s *shard) callsBlockingUnderLock() {
	s.mu.Lock()
	s.blocksInside() // want "held across channel receive in"
	s.mu.Unlock()
}

func (s *shard) nonBlockingSend() {
	s.mu.Lock()
	select {
	case s.ch <- 1: // non-blocking with a default: clean
	default:
	}
	s.mu.Unlock()
}

func (s *shard) blockingSelect() {
	s.mu.Lock()
	select { // want "held across a select with no default"
	case s.ch <- 1:
	case <-s.ch:
	}
	s.mu.Unlock()
}

func (s *shard) spawned() {
	s.mu.Lock()
	go func() {
		s.ch <- 1 // another goroutine's stack: clean
	}()
	s.mu.Unlock()
}
