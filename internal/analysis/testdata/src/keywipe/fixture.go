// Package fixture exercises the keywipe analyzer: complete Wipe
// methods, a missing method, an incomplete method, nested key-bearing
// structs, and a suppressed type.
package fixture

// wipe zeroizes b (the fixture's stand-in for secmem.Wipe).
func wipe(b []byte) {
	for i := range b {
		b[i] = 0
	}
}

// WipedKeys declares a complete Wipe: no finding.
type WipedKeys struct {
	SessionKey []byte
	Label      string
}

func (k *WipedKeys) Wipe() {
	wipe(k.SessionKey)
}

type NakedKeys struct { // want "declares no Wipe method"
	MasterSecret []byte
}

type PartialKeys struct {
	ReadKey  []byte
	WriteKey []byte
}

func (p *PartialKeys) Wipe() { // want "does not clear secret field WriteKey"
	wipe(p.ReadKey)
}

// Inner/Outer: a value field of a secret-bearing struct counts as a
// secret field and is cleared by a nested Wipe call.
type Inner struct {
	HopKey []byte
}

func (i *Inner) Wipe() {
	wipe(i.HopKey)
}

type Outer struct {
	Inner Inner
	Name  string
}

func (o *Outer) Wipe() {
	o.Inner.Wipe()
}

// MappedKeys clears its map with the range idiom.
type MappedKeys struct {
	SecretsByName map[string][]byte
}

func (m *MappedKeys) Wipe() {
	for _, s := range m.SecretsByName {
		wipe(s)
	}
}

// ArrayKeys holds key material in fixed-size arrays (the STEK shape)
// and clears them through the field[:] slicing idiom: no finding.
type ArrayKeys struct {
	CurrentKey  [32]byte
	PreviousKey [32]byte
	Generation  int
}

func (a *ArrayKeys) Wipe() {
	wipe(a.CurrentKey[:])
	wipe(a.PreviousKey[:])
}

type NakedArrayKeys struct { // want "declares no Wipe method"
	TicketKey [32]byte
}

type PartialArrayKeys struct {
	SealKey [32]byte
	OpenKey [32]byte
}

func (p *PartialArrayKeys) Wipe() { // want "does not clear secret field OpenKey"
	wipe(p.SealKey[:])
}

// HashIndex names a lookup digest "hash", not "key": arrays of public
// material stay out of scope by naming convention.
type HashIndex struct {
	ChainHash [32]byte
}

// SigningPair holds the private half of a signing keypair under the
// "priv" naming convention (the delegation-key shape): the private
// half is key material, the public half is exempt.
type SigningPair struct { // want "declares no Wipe method"
	pub  []byte
	priv []byte
}

// WipedSigningPair is its complete counterpart: no finding.
type WipedSigningPair struct {
	Pub  []byte
	priv []byte
}

func (k *WipedSigningPair) Wipe() {
	wipe(k.priv)
}

//lint:ignore keywipe fixture demonstrates an accepted, documented exception
type WaivedKeys struct {
	PrivateKey []byte
}
