// Package fixture exercises the secretcompare analyzer: true
// positives, true negatives, and a suppressed site.
package fixture

import (
	"bytes"
	"crypto/subtle"
	"reflect"
)

// versionKey is a wire label, not key material: constants are exempt.
const versionKey = "vk1"

func compare(masterSecret, candidate, sessionKeys []byte, macKey, other string) bool {
	if bytes.Equal(masterSecret, candidate) { // want "variable-time bytes.Equal on secret"
		return true
	}
	if reflect.DeepEqual(sessionKeys, candidate) { // want "variable-time reflect.DeepEqual on secret"
		return true
	}
	if macKey == other { // want "variable-time == comparison of secret"
		return true
	}
	if other == versionKey { // constant label comparison: not flagged
		return true
	}
	if masterSecret == nil { // nil presence check: not flagged
		return false
	}
	if bytes.Equal(candidate, candidate) { // no secret-named operand: not flagged
		return false
	}
	//lint:ignore secretcompare fixture demonstrates a justified suppression
	if bytes.Equal(candidate, masterSecret) {
		return true
	}
	return subtle.ConstantTimeCompare(masterSecret, candidate) == 1
}
