package fixture

import (
	//lint:ignore cryptorand fixture demonstrates a justified seeded source
	mrand "math/rand"
)

var _ = mrand.New
