// Package fixture exercises the cryptorand analyzer.
package fixture

import (
	crand "crypto/rand"
	"math/rand" // want "import of math/rand"
)

var (
	_ = rand.Int
	_ = crand.Reader
)
