// Package fixture gives the summary engine's unit tests known shapes:
// taint pass-through, fresh sources, sink parameters, sanitizers,
// blocking operations, lock acquisition, and interface dispatch.
package fixture

import (
	"log"
	"sync"
)

type session struct {
	masterSecret []byte
}

type blob []byte

// Seal stands in for an AEAD seal.
func Seal(dst, plaintext []byte) []byte { return append(dst, plaintext...) }

func passthrough(key []byte) []byte { return key }

func sealed(key []byte) []byte { return Seal(nil, key) }

func source(s *session) []byte { return s.masterSecret }

func sinkParam(b []byte) {
	log.Printf("%x", b)
}

func (b blob) id() blob { return b }

func waiter(ch chan int) {
	<-ch
}

func nonBlocking(ch chan int) {
	select {
	case <-ch:
	default:
	}
}

type box struct {
	mu   sync.Mutex
	n    int
	door interface{ Open() }
}

func (b *box) touch() {
	b.mu.Lock()
	b.n++
	b.mu.Unlock()
}

func (b *box) touchTransitively() {
	b.touch()
}

type redDoor struct{ opened bool }

func (d *redDoor) Open() { d.opened = true }

type blueDoor struct{ opened bool }

func (d *blueDoor) Open() { d.opened = true }

func openDoor(b *box) {
	b.door.Open()
}
