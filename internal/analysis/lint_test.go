package analysis

import (
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// wantRe extracts the expected-message substring from a fixture's
// `// want "..."` comment.
var wantRe = regexp.MustCompile(`want "([^"]+)"`)

// fixtureWants collects the expected diagnostics of a fixture package,
// keyed by line number.
func fixtureWants(pkg *Package) map[int][]string {
	wants := make(map[int][]string)
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.Contains(c.Text, "want ") {
					continue
				}
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				line := pkg.Fset.Position(c.Slash).Line
				wants[line] = append(wants[line], m[1])
			}
		}
	}
	return wants
}

// runFixture loads testdata/src/<name>, runs the analyzer, and checks
// the diagnostics against the fixture's want comments exactly.
func runFixture(t *testing.T, name string, a *Analyzer) {
	t.Helper()
	pkg, err := LoadDir(filepath.Join("testdata", "src", name))
	if err != nil {
		t.Fatalf("LoadDir(%s): %v", name, err)
	}
	wants := fixtureWants(pkg)
	if len(wants) == 0 {
		t.Fatalf("fixture %s declares no want comments", name)
	}
	diags := Run([]*Package{pkg}, []*Analyzer{a})

	matched := make(map[int][]bool)
	for line, subs := range wants {
		matched[line] = make([]bool, len(subs))
	}
	for _, d := range diags {
		found := false
		for i, sub := range wants[d.Pos.Line] {
			if strings.Contains(d.Message, sub) && !matched[d.Pos.Line][i] {
				matched[d.Pos.Line][i] = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for line, subs := range wants {
		for i, sub := range subs {
			if !matched[line][i] {
				t.Errorf("missing diagnostic at %s line %d: want message containing %q", name, line, sub)
			}
		}
	}
}

func TestSecretCompareFixture(t *testing.T) { runFixture(t, "secretcompare", SecretCompare) }

func TestKeyWipeFixture(t *testing.T) { runFixture(t, "keywipe", KeyWipe) }

func TestBufOwnershipFixture(t *testing.T) { runFixture(t, "bufownership", BufOwnership) }

func TestEnclaveBoundaryFixture(t *testing.T) { runFixture(t, "enclaveboundary", EnclaveBoundary) }

func TestCryptoRandFixture(t *testing.T) { runFixture(t, "cryptorand", CryptoRand) }

func TestSecretFlowFixture(t *testing.T) { runFixture(t, "secretflow", SecretFlow) }

func TestAtomicFieldFixture(t *testing.T) { runFixture(t, "atomicfield", AtomicField) }

func TestLockOrderFixture(t *testing.T) { runFixture(t, "lockorder", LockOrder) }

func TestErrorClassFixture(t *testing.T) { runFixture(t, "errorclass", ErrorClass) }

// TestLintDirectiveFixture pins that malformed suppressions are
// themselves findings, whatever analyzers run.
func TestLintDirectiveFixture(t *testing.T) {
	pkg, err := LoadDir(filepath.Join("testdata", "src", "lintdirective"))
	if err != nil {
		t.Fatalf("LoadDir: %v", err)
	}
	diags := Run([]*Package{pkg}, Analyzers())
	if len(diags) != 2 {
		t.Fatalf("got %d diagnostics, want 2 malformed-directive findings:\n%v", len(diags), diags)
	}
	for _, d := range diags {
		if d.Check != "lintdirective" {
			t.Errorf("got check %q, want lintdirective: %s", d.Check, d)
		}
		if !strings.Contains(d.Message, "malformed") {
			t.Errorf("message does not mention malformed: %s", d)
		}
	}
}

// TestIgnoreBudgetFixture pins the suppression-budget check against a
// fixture with four well-formed directives and one malformed one: at
// the ceiling it stays silent, beyond it each extra directive is
// flagged in source order, and malformed directives do not count
// toward the budget (they are lintdirective findings instead).
func TestIgnoreBudgetFixture(t *testing.T) {
	pkg, err := LoadDir(filepath.Join("testdata", "src", "ignorebudget"))
	if err != nil {
		t.Fatalf("LoadDir: %v", err)
	}
	pkgs := []*Package{pkg}

	if diags := IgnoreBudget(pkgs, 4); len(diags) != 0 {
		t.Errorf("at the ceiling: got %d findings, want 0:\n%v", len(diags), diags)
	}
	if diags := IgnoreBudget(pkgs, -1); len(diags) != 0 {
		t.Errorf("disabled: got %d findings, want 0", len(diags))
	}

	diags := IgnoreBudget(pkgs, 3)
	if len(diags) != 1 {
		t.Fatalf("one over the ceiling: got %d findings, want 1:\n%v", len(diags), diags)
	}
	if diags[0].Check != "ignorebudget" {
		t.Errorf("check = %q, want ignorebudget", diags[0].Check)
	}
	if diags[0].Pos.Line != 15 {
		t.Errorf("finding anchored at line %d, want 15 (the fourth directive)", diags[0].Pos.Line)
	}
	if !strings.Contains(diags[0].Message, "budget of 3") {
		t.Errorf("message does not state the budget: %s", diags[0])
	}

	if diags := IgnoreBudget(pkgs, 2); len(diags) != 2 {
		t.Errorf("two over the ceiling: got %d findings, want 2:\n%v", len(diags), diags)
	}
}

// TestSuppressionRequiresMatchingCheck pins that a directive for one
// check does not silence another.
func TestSuppressionRequiresMatchingCheck(t *testing.T) {
	idx := &ignoreIndex{byFileLine: map[string]map[int][]*ignoreDirective{
		"f.go": {10: {{file: "f.go", line: 10, checks: []string{"keywipe"}, reason: "r"}}},
	}}
	d := Diagnostic{Check: "secretcompare"}
	d.Pos.Filename, d.Pos.Line = "f.go", 10
	if idx.suppressed(d) {
		t.Error("keywipe directive suppressed a secretcompare finding")
	}
	d.Check = "keywipe"
	if !idx.suppressed(d) {
		t.Error("keywipe directive did not suppress a keywipe finding on its line")
	}
	d.Pos.Line = 11
	if !idx.suppressed(d) {
		t.Error("directive did not cover the line below it")
	}
	d.Pos.Line = 12
	if idx.suppressed(d) {
		t.Error("directive leaked two lines down")
	}
}

// TestRepoClean runs the full suite over the repository itself: the
// tree must stay free of findings (ISSUE: every real violation fixed or
// carries a justified suppression).
func TestRepoClean(t *testing.T) {
	if testing.Short() {
		t.Skip("whole-module type check is slow")
	}
	pkgs, broken, err := Load(filepath.Join("..", ".."))
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	for _, pe := range broken {
		t.Errorf("package failed to load: %v", pe)
	}
	if len(pkgs) < 10 {
		t.Fatalf("implausibly few packages loaded: %d", len(pkgs))
	}
	diags := Run(pkgs, Analyzers())
	for _, d := range diags {
		t.Errorf("repository finding: %s", d)
	}
	for _, d := range IgnoreBudget(pkgs, DefaultIgnoreBudget) {
		t.Errorf("suppression budget exceeded: %s", d)
	}
}

// TestLoaderSkipsTests pins the test-exemption: _test.go files are not
// part of the analyzed package.
func TestLoaderSkipsTests(t *testing.T) {
	pkg, err := LoadDir(".")
	if err != nil {
		t.Fatalf("LoadDir: %v", err)
	}
	for _, f := range pkg.Files {
		name := filepath.Base(pkg.Fset.Position(f.Pos()).Filename)
		if strings.HasSuffix(name, "_test.go") {
			t.Errorf("loader included test file %s", name)
		}
	}
}
