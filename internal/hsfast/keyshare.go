package hsfast

import (
	"crypto/ecdh"
	"crypto/rand"
	"io"
	"sync"
	"sync/atomic"

	"repro/internal/secmem"
)

// KeyShare is one precomputed X25519 keypair. The expensive part of
// generating a share is deriving the public point (a base-point scalar
// multiplication); the pool does that on idle workers so the handshake
// only has to wrap the scalar back into an ecdh.PrivateKey.
type KeyShare struct {
	// PrivKey is the 32-byte X25519 scalar.
	PrivKey []byte
	// Pub is the matching 32-byte public point.
	Pub []byte
}

// Wipe zeroizes the private scalar. The pool wipes shares it hands
// out (the consumer's ecdh.PrivateKey owns its own copy) and shares
// left in the pool at Close.
func (s *KeyShare) Wipe() {
	if s == nil {
		return
	}
	secmem.Wipe(s.PrivKey)
	s.PrivKey = nil
}

// KeySharePoolStats is a point-in-time snapshot of a pool's counters.
type KeySharePoolStats struct {
	// Capacity is the configured pool size.
	Capacity int
	// Ready is the number of precomputed shares currently waiting.
	Ready int
	// Hits counts handshakes served from a precomputed share.
	Hits int64
	// Misses counts handshakes that generated inline (pool empty).
	Misses int64
	// Wiped counts unused shares destroyed at Close.
	Wiped int64
}

// HitRate is Hits/(Hits+Misses), or 0 before any request.
func (s KeySharePoolStats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// KeySharePool pre-generates X25519 keyshares on background workers.
// It implements the tls12.KeyShareSource interface; one pool is shared
// by every handshake a host runs, so its capacity bounds precompute
// memory the way RecordBufPool bounds relay memory.
type KeySharePool struct {
	shares chan *KeyShare
	done   chan struct{}
	wg     sync.WaitGroup
	once   sync.Once
	rand   io.Reader

	hits   atomic.Int64
	misses atomic.Int64
	wiped  atomic.Int64
}

// NewKeySharePool starts a pool holding up to size shares, refilled by
// workers background goroutines. size and workers default to 64 and 1
// when non-positive. Close releases the workers and wipes unused
// shares.
func NewKeySharePool(size, workers int) *KeySharePool {
	if size <= 0 {
		size = 64
	}
	if workers <= 0 {
		workers = 1
	}
	p := &KeySharePool{
		shares: make(chan *KeyShare, size),
		done:   make(chan struct{}),
		rand:   rand.Reader,
	}
	p.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go p.fill()
	}
	return p
}

// fill generates shares until the pool closes, parking on the channel
// send whenever the pool is full.
func (p *KeySharePool) fill() {
	defer p.wg.Done()
	for {
		select {
		case <-p.done:
			return
		default:
		}
		priv, err := ecdh.X25519().GenerateKey(p.rand)
		if err != nil {
			// Entropy failure: stop precomputing; handshakes fall
			// back to inline generation and surface the error there.
			return
		}
		share := &KeyShare{PrivKey: priv.Bytes(), Pub: priv.PublicKey().Bytes()}
		select {
		case p.shares <- share:
		case <-p.done:
			share.Wipe()
			return
		}
	}
}

// X25519KeyShare returns an ephemeral X25519 key for one handshake:
// a precomputed share when available (hit), otherwise generated inline
// (miss). The returned private key owns its own scalar copy; the
// pool's copy is wiped before returning.
func (p *KeySharePool) X25519KeyShare() (*ecdh.PrivateKey, []byte, error) {
	select {
	case share := <-p.shares:
		priv, err := ecdh.X25519().NewPrivateKey(share.PrivKey)
		pub := share.Pub
		share.Wipe()
		if err != nil {
			return nil, nil, err
		}
		p.hits.Add(1)
		return priv, pub, nil
	default:
	}
	p.misses.Add(1)
	priv, err := ecdh.X25519().GenerateKey(p.rand)
	if err != nil {
		return nil, nil, err
	}
	return priv, priv.PublicKey().Bytes(), nil
}

// Stats snapshots the pool's counters.
func (p *KeySharePool) Stats() KeySharePoolStats {
	return KeySharePoolStats{
		Capacity: cap(p.shares),
		Ready:    len(p.shares),
		Hits:     p.hits.Load(),
		Misses:   p.misses.Load(),
		Wiped:    p.wiped.Load(),
	}
}

// Close stops the workers and wipes every unused share. Safe to call
// more than once; the pool still serves (inline) after Close.
func (p *KeySharePool) Close() {
	p.once.Do(func() {
		close(p.done)
		p.wg.Wait()
		for {
			select {
			case share := <-p.shares:
				share.Wipe()
				p.wiped.Add(1)
			default:
				return
			}
		}
	})
}
