package hsfast

import (
	"crypto/ecdh"
	"crypto/rand"
	"io"
	"sync"
	"sync/atomic"
)

// KeyShare is one precomputed X25519 keypair, held ready-to-use: the
// expensive part of generating a share is deriving the public point (a
// base-point scalar multiplication), and the pool does that once on an
// idle worker. The share stores the *ecdh.PrivateKey itself — earlier
// revisions stored the raw scalar and re-derived the key at hand-out,
// which repeated the base-point multiplication on every pool hit and
// made a hit as expensive as inline generation.
type KeyShare struct {
	priv *ecdh.PrivateKey
	pub  []byte
}

// Wipe drops the share's key references. The scalar lives inside the
// stdlib ecdh.PrivateKey (which keeps its own copy and offers no
// zeroization hook), so an unused share's material is released to the
// GC rather than overwritten — the same lifetime an inline-generated
// handshake key has.
func (s *KeyShare) Wipe() {
	if s == nil {
		return
	}
	s.priv = nil
	s.pub = nil
}

// KeySharePoolStats is a point-in-time snapshot of a pool's counters.
type KeySharePoolStats struct {
	// Capacity is the configured pool size.
	Capacity int
	// Workers is how many refill workers keep the pool full.
	Workers int
	// Ready is the number of precomputed shares currently waiting.
	Ready int
	// Hits counts handshakes served from a precomputed share.
	Hits int64
	// Misses counts handshakes that generated inline (pool empty).
	Misses int64
	// Wiped counts unused shares destroyed at Close.
	Wiped int64
}

// HitRate is Hits/(Hits+Misses), or 0 before any request.
func (s KeySharePoolStats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// KeySharePool pre-generates X25519 keyshares on background workers.
// It implements the tls12.KeyShareSource interface; one pool is shared
// by every handshake a host runs, so its capacity bounds precompute
// memory the way RecordBufPool bounds relay memory.
type KeySharePool struct {
	shares  chan *KeyShare
	done    chan struct{}
	wg      sync.WaitGroup
	once    sync.Once
	rand    io.Reader
	workers int

	hits   atomic.Int64
	misses atomic.Int64
	wiped  atomic.Int64
}

// DefaultSharesPerShard sizes NewKeySharePoolForShards: enough stock
// per shard to absorb an admission burst while that shard's refill
// worker catches up.
const DefaultSharesPerShard = 64

// NewKeySharePool starts a pool holding up to size shares, refilled by
// workers background goroutines. size and workers default to 64 and 1
// when non-positive. Close releases the workers and wipes unused
// shares.
func NewKeySharePool(size, workers int) *KeySharePool {
	if size <= 0 {
		size = 64
	}
	if workers <= 0 {
		workers = 1
	}
	p := &KeySharePool{
		shares:  make(chan *KeyShare, size),
		done:    make(chan struct{}),
		rand:    rand.Reader,
		workers: workers,
	}
	p.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go p.fill()
	}
	return p
}

// NewKeySharePoolForShards sizes a pool from a session host's shard
// count: one refill worker and DefaultSharesPerShard of capacity per
// shard, so refill throughput and burst stock scale with the host
// instead of a fixed single-worker default (which is what let the hit
// rate sag at high concurrency).
func NewKeySharePoolForShards(shards int) *KeySharePool {
	if shards < 1 {
		shards = 1
	}
	return NewKeySharePool(DefaultSharesPerShard*shards, shards)
}

// fill generates shares until the pool closes, parking on the channel
// send whenever the pool is full.
func (p *KeySharePool) fill() {
	defer p.wg.Done()
	for {
		select {
		case <-p.done:
			return
		default:
		}
		priv, err := ecdh.X25519().GenerateKey(p.rand)
		if err != nil {
			// Entropy failure: stop precomputing; handshakes fall
			// back to inline generation and surface the error there.
			return
		}
		share := &KeyShare{priv: priv, pub: priv.PublicKey().Bytes()}
		select {
		case p.shares <- share:
		case <-p.done:
			share.Wipe()
			return
		}
	}
}

// X25519KeyShare returns an ephemeral X25519 key for one handshake:
// a precomputed share when available (hit), otherwise generated inline
// (miss). A hit hands over the ready private key — no scalar
// re-derivation on the handshake path.
func (p *KeySharePool) X25519KeyShare() (*ecdh.PrivateKey, []byte, error) {
	select {
	case share := <-p.shares:
		priv, pub := share.priv, share.pub
		share.Wipe()
		p.hits.Add(1)
		return priv, pub, nil
	default:
	}
	p.misses.Add(1)
	priv, err := ecdh.X25519().GenerateKey(p.rand)
	if err != nil {
		return nil, nil, err
	}
	return priv, priv.PublicKey().Bytes(), nil
}

// Stats snapshots the pool's counters.
func (p *KeySharePool) Stats() KeySharePoolStats {
	return KeySharePoolStats{
		Capacity: cap(p.shares),
		Workers:  p.workers,
		Ready:    len(p.shares),
		Hits:     p.hits.Load(),
		Misses:   p.misses.Load(),
		Wiped:    p.wiped.Load(),
	}
}

// Close stops the workers and wipes every unused share. Safe to call
// more than once; the pool still serves (inline) after Close.
func (p *KeySharePool) Close() {
	p.once.Do(func() {
		close(p.done)
		p.wg.Wait()
		for {
			select {
			case share := <-p.shares:
				share.Wipe()
				p.wiped.Add(1)
			default:
				return
			}
		}
	})
}
