package hsfast

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/testutil/goleak"
)

// TestVerifyCacheTTLExpiry drives the injectable clock across the TTL
// boundary: a verdict is served right up to the deadline and re-verified
// one tick past it, with the expiry counted.
func TestVerifyCacheTTLExpiry(t *testing.T) {
	goleak.Check(t)
	now := time.Unix(5000, 0)
	c := NewVerifyCache(8, 10*time.Second, func() time.Time { return now })
	key := [32]byte{7}
	var runs int
	verify := func() error { runs++; return nil }

	if cached, _ := c.Do(key, verify); cached {
		t.Fatal("empty cache served a verdict")
	}
	now = now.Add(10 * time.Second) // exactly at the deadline: still valid
	if cached, _ := c.Do(key, verify); !cached {
		t.Fatal("verdict expired before its TTL elapsed")
	}
	now = now.Add(time.Nanosecond) // one tick past: expired
	if cached, _ := c.Do(key, verify); cached {
		t.Fatal("verdict served past its TTL")
	}
	if runs != 2 {
		t.Fatalf("verifier ran %d times, want 2 (initial + re-verify)", runs)
	}
	s := c.Stats()
	if s.Expired != 1 || s.Misses != 2 || s.Hits != 1 {
		t.Fatalf("stats = %+v, want 1 expired, 2 misses, 1 hit", s)
	}
}

// TestVerifyCacheLRUCapacity fills the cache past capacity and checks
// that eviction follows use recency, not insertion order, and that the
// entry count never exceeds max.
func TestVerifyCacheLRUCapacity(t *testing.T) {
	goleak.Check(t)
	const max = 4
	c := NewVerifyCache(max, 0, nil)
	ok := func() error { return nil }
	key := func(i int) [32]byte { return [32]byte{byte(i), byte(i >> 8)} }

	for i := 0; i < max; i++ {
		c.Do(key(i), ok)
	}
	c.Do(key(0), ok) // refresh the oldest; key 1 is now LRU
	for i := max; i < max+3; i++ {
		c.Do(key(i), ok)
		if n := c.Stats().Entries; n > max {
			t.Fatalf("entries = %d, want <= %d", n, max)
		}
	}
	if cached, _ := c.Do(key(0), ok); !cached {
		t.Fatal("refreshed verdict was evicted ahead of colder entries")
	}
	for _, i := range []int{1, 2, 3} {
		if cached, _ := c.Do(key(i), ok); cached {
			t.Fatalf("cold verdict %d survived capacity pressure", i)
		}
	}
	if s := c.Stats(); s.Evicted < 3 {
		t.Fatalf("stats = %+v, want at least 3 evictions", s)
	}
}

// TestVerifyCacheCoalescing64 pins single-flight dedup under real
// contention: 64 goroutines look up the same key while the verifier is
// parked, the verifier runs exactly once, every caller shares its
// verdict, and no goroutine outlives the test (goleak). Run with -race.
func TestVerifyCacheCoalescing64(t *testing.T) {
	goleak.Check(t)
	const callers = 64
	c := NewVerifyCache(16, 0, nil)
	key := [32]byte{42}

	var runs atomic.Int64
	started := make(chan struct{}) // verifier entered
	release := make(chan struct{}) // let the verifier finish
	ready := make(chan struct{})   // all callers launched
	var launched sync.WaitGroup
	launched.Add(callers)
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			launched.Done()
			<-ready
			cached, err := c.Do(key, func() error {
				runs.Add(1)
				close(started)
				<-release
				return nil
			})
			if err != nil {
				t.Errorf("Do: %v", err)
			}
			_ = cached
		}()
	}
	launched.Wait()
	close(ready)
	<-started // one caller is inside the verifier; let the rest pile up
	time.Sleep(10 * time.Millisecond)
	close(release)
	wg.Wait()

	if got := runs.Load(); got != 1 {
		t.Fatalf("verifier ran %d times, want 1", got)
	}
	s := c.Stats()
	if s.Misses != 1 {
		t.Fatalf("misses = %d, want 1", s.Misses)
	}
	if served := s.Hits + s.Waits; served != callers-1 {
		t.Fatalf("hits+waits = %d, want %d", served, callers-1)
	}
}

// TestVerifyCacheConcurrentMixedKeys hammers the cache from 64
// goroutines across overlapping keys with occasional failures and
// invalidations — a -race workout for the entry/LRU bookkeeping. The
// only invariants asserted are the ones that survive arbitrary
// interleaving: failures are never served from the cache, and the entry
// count respects capacity.
func TestVerifyCacheConcurrentMixedKeys(t *testing.T) {
	goleak.Check(t)
	const (
		callers = 64
		keys    = 8
		rounds  = 50
	)
	c := NewVerifyCache(keys/2, time.Hour, nil)
	boom := errors.New("boom")

	var wg sync.WaitGroup
	for g := 0; g < callers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				k := [32]byte{byte((g + r) % keys)}
				fail := k[0] == 0 // key 0 always fails verification
				cached, err := c.Do(k, func() error {
					if fail {
						return boom
					}
					return nil
				})
				if fail && cached && err == nil {
					t.Error("failing key served a cached success")
				}
				if !fail && err != nil {
					t.Errorf("Do(%d): %v", k[0], err)
				}
				if r%16 == g%16 {
					c.Invalidate(k)
				}
			}
		}(g)
	}
	wg.Wait()

	if n := c.Stats().Entries; n > keys/2 {
		t.Fatalf("entries = %d, want <= %d", n, keys/2)
	}
}
