package hsfast

import (
	"crypto/ecdh"
	"crypto/rand"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestKeySharePoolHit pins that a pooled share round-trips into a
// working ECDH key: the wrapped private key agrees with the returned
// public bytes, and the pool's copy of the scalar is wiped.
func TestKeySharePoolHit(t *testing.T) {
	p := NewKeySharePool(4, 1)
	defer p.Close()

	// Wait for the workers to precompute at least one share.
	deadline := time.Now().Add(5 * time.Second)
	for len(p.shares) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("pool never filled")
		}
		time.Sleep(time.Millisecond)
	}

	priv, pub, err := p.X25519KeyShare()
	if err != nil {
		t.Fatal(err)
	}
	if got := priv.PublicKey().Bytes(); string(got) != string(pub) {
		t.Fatalf("returned public bytes do not match the private key")
	}
	// Cross-check the pair with a fresh peer key.
	peer, err := ecdh.X25519().GenerateKey(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := priv.ECDH(peer.PublicKey()); err != nil {
		t.Fatalf("ECDH with pooled key: %v", err)
	}
	s := p.Stats()
	if s.Hits != 1 {
		t.Fatalf("hits = %d, want 1", s.Hits)
	}
}

// TestKeySharePoolMiss pins that an empty pool generates inline and
// counts a miss instead of blocking.
func TestKeySharePoolMiss(t *testing.T) {
	p := NewKeySharePool(1, 1)
	p.Close() // stop the filler and drain: every request is now a miss

	priv, pub, err := p.X25519KeyShare()
	if err != nil {
		t.Fatal(err)
	}
	if priv == nil || len(pub) != 32 {
		t.Fatalf("inline generation returned priv=%v len(pub)=%d", priv, len(pub))
	}
	if s := p.Stats(); s.Misses == 0 {
		t.Fatalf("stats = %+v, want a miss", s)
	}
}

// TestKeySharePoolCloseWipes pins that Close wipes unused shares and
// counts them.
func TestKeySharePoolCloseWipes(t *testing.T) {
	p := NewKeySharePool(8, 2)
	deadline := time.Now().Add(5 * time.Second)
	for len(p.shares) < 8 {
		if time.Now().After(deadline) {
			t.Fatal("pool never filled")
		}
		time.Sleep(time.Millisecond)
	}
	p.Close()
	if s := p.Stats(); s.Wiped != 8 {
		t.Fatalf("wiped = %d, want 8", s.Wiped)
	}
}

// TestSTEKGraceWindow pins the rotation contract: tickets sealed under
// generation N open during generation N+1 (grace) and are refused at
// generation N+2.
func TestSTEKGraceWindow(t *testing.T) {
	now := time.Unix(1000, 0)
	clock := func() time.Time { return now }
	s, err := NewSTEK(time.Minute, clock)
	if err != nil {
		t.Fatal(err)
	}
	gen0 := s.SealKey()

	now = now.Add(61 * time.Second) // one interval: gen0 in grace
	keys := s.OpenKeys()
	if len(keys) != 2 || keys[1] != gen0 {
		t.Fatalf("after one rotation OpenKeys = %d keys, want [gen1 gen0]", len(keys))
	}
	if s.SealKey() == gen0 {
		t.Fatal("seal key did not rotate")
	}

	now = now.Add(61 * time.Second) // second interval: gen0 retired
	for _, k := range s.OpenKeys() {
		if k == gen0 {
			t.Fatal("gen0 still accepted after grace window")
		}
	}
}

// TestSTEKBigGap pins that a gap of many intervals retires both
// generations at once instead of looping per missed interval.
func TestSTEKBigGap(t *testing.T) {
	now := time.Unix(1000, 0)
	clock := func() time.Time { return now }
	s, err := NewSTEK(time.Minute, clock)
	if err != nil {
		t.Fatal(err)
	}
	gen0 := s.SealKey()
	now = now.Add(1000 * time.Minute)
	keys := s.OpenKeys()
	if len(keys) != 1 {
		t.Fatalf("after big gap OpenKeys = %d keys, want 1", len(keys))
	}
	if keys[0] == gen0 {
		t.Fatal("stale key survived a big gap")
	}
	if got := s.Rotations(); got != 1 {
		t.Fatalf("rotations = %d, want 1 (bulk retire)", got)
	}
}

// TestSTEKManualRotateAndWipe covers Rotate and Wipe.
func TestSTEKManualRotateAndWipe(t *testing.T) {
	s, err := NewSTEK(0, nil)
	if err != nil {
		t.Fatal(err)
	}
	k0 := s.SealKey()
	if err := s.Rotate(); err != nil {
		t.Fatal(err)
	}
	keys := s.OpenKeys()
	if len(keys) != 2 || keys[1] != k0 {
		t.Fatalf("after Rotate OpenKeys = %v keys, want previous retained", len(keys))
	}
	s.Wipe()
	var zero [32]byte
	if s.SealKey() != zero {
		t.Fatal("Wipe left a live key")
	}
	if len(s.OpenKeys()) != 1 {
		t.Fatal("Wipe left the previous generation")
	}
}

// TestVerifyCacheSingleFlight pins that N concurrent lookups of one
// key run the verifier exactly once and all share its verdict.
func TestVerifyCacheSingleFlight(t *testing.T) {
	c := NewVerifyCache(16, 0, nil)
	var runs atomic.Int64
	gate := make(chan struct{})
	var wg sync.WaitGroup
	key := [32]byte{1}
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, err := c.Do(key, func() error {
				runs.Add(1)
				<-gate
				return nil
			})
			if err != nil {
				t.Errorf("Do: %v", err)
			}
		}()
	}
	// Let the goroutines pile up on the in-flight entry, then release.
	time.Sleep(20 * time.Millisecond)
	close(gate)
	wg.Wait()
	if got := runs.Load(); got != 1 {
		t.Fatalf("verifier ran %d times, want 1", got)
	}
	s := c.Stats()
	if s.Misses != 1 || s.Hits+s.Waits != 7 {
		t.Fatalf("stats = %+v, want 1 miss and 7 shared verdicts", s)
	}
}

// TestVerifyCacheFailureNotCached pins that failures are shared with
// in-flight waiters but never cached for later lookups.
func TestVerifyCacheFailureNotCached(t *testing.T) {
	c := NewVerifyCache(16, 0, nil)
	key := [32]byte{2}
	boom := errors.New("boom")
	if _, err := c.Do(key, func() error { return boom }); !errors.Is(err, boom) {
		t.Fatalf("first Do err = %v, want boom", err)
	}
	ran := false
	if _, err := c.Do(key, func() error { ran = true; return nil }); err != nil {
		t.Fatal(err)
	}
	if !ran {
		t.Fatal("failure was cached")
	}
	if cached, _ := c.Do(key, func() error { t.Fatal("success not cached"); return nil }); !cached {
		t.Fatal("success verdict not served from cache")
	}
}

// TestVerifyCacheTTLAndInvalidate covers expiry, Invalidate, and Flush.
func TestVerifyCacheTTLAndInvalidate(t *testing.T) {
	now := time.Unix(1000, 0)
	c := NewVerifyCache(16, time.Minute, func() time.Time { return now })
	key := [32]byte{3}
	verify := func() error { return nil }
	if cached, _ := c.Do(key, verify); cached {
		t.Fatal("first lookup served from cache")
	}
	if cached, _ := c.Do(key, verify); !cached {
		t.Fatal("second lookup missed")
	}
	now = now.Add(2 * time.Minute)
	if cached, _ := c.Do(key, verify); cached {
		t.Fatal("expired verdict served")
	}
	if s := c.Stats(); s.Expired != 1 {
		t.Fatalf("expired = %d, want 1", s.Expired)
	}
	c.Invalidate(key)
	if cached, _ := c.Do(key, verify); cached {
		t.Fatal("invalidated verdict served")
	}
	c.Flush()
	if s := c.Stats(); s.Entries != 0 {
		t.Fatalf("entries after Flush = %d, want 0", s.Entries)
	}
}

// TestVerifyCacheLRUEviction pins capacity pressure: the least
// recently used verdict goes first.
func TestVerifyCacheLRUEviction(t *testing.T) {
	c := NewVerifyCache(2, 0, nil)
	ok := func() error { return nil }
	a, b, d := [32]byte{10}, [32]byte{11}, [32]byte{12}
	c.Do(a, ok)
	c.Do(b, ok)
	c.Do(a, ok) // refresh a; b is now LRU
	c.Do(d, ok) // evicts b
	if cached, _ := c.Do(a, ok); !cached {
		t.Fatal("recently used verdict was evicted")
	}
	if cached, _ := c.Do(b, ok); cached {
		t.Fatal("LRU verdict survived eviction")
	}
	if s := c.Stats(); s.Evicted == 0 {
		t.Fatalf("stats = %+v, want evictions", s)
	}
}
