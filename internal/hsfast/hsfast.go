// Package hsfast is the handshake fast path: the pieces that amortize
// asymmetric crypto across sessions so the control plane scales with
// session rate the way PR 1 made the data plane scale with bytes.
//
// Three mechanisms live here, all host-scoped like tls12.RecordBufPool:
//
//   - KeySharePool pre-generates X25519 keypairs on idle workers so a
//     handshake's ServerKeyExchange/ClientKeyExchange costs a channel
//     receive instead of a base-point scalar multiplication.
//   - STEK is a rotating session-ticket encryption key with a
//     one-generation grace window, shared by every hop a host
//     terminates.
//   - VerifyCache memoizes expensive verification verdicts (Ed25519
//     certificate chains, attestation endorsement chains) under an LRU
//     with TTL expiry, explicit invalidation, and single-flight dedup
//     so concurrent handshakes for the same peer verify once.
//
// None of these change what is verified — only how often the same
// bytes are re-verified (RA-TLS makes the same observation for
// attestation evidence; see PAPERS.md).
package hsfast
