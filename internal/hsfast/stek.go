package hsfast

import (
	"crypto/rand"
	"io"
	"sync"
	"time"

	"repro/internal/secmem"
)

// STEK is a rotating session-ticket encryption key with a
// one-generation grace window. It implements the tls12.TicketKeySource
// interface: tickets are sealed under the current generation and open
// under the current or the immediately previous one, so resumption
// survives exactly one rotation. Tickets sealed two or more
// generations ago fail to open, which the handshake treats as a silent
// fall back to a full handshake — never an error.
//
// Rotation is lazy: SealKey and OpenKeys rotate when the configured
// interval has elapsed, so no background goroutine is needed and the
// injected clock keeps tests deterministic.
type STEK struct {
	mu       sync.Mutex
	interval time.Duration
	now      func() time.Time
	rand     io.Reader

	rotatedAt   time.Time
	currentKey  [32]byte
	previousKey [32]byte
	hasPrevious bool
	rotations   int64
}

// NewSTEK creates a STEK that rotates every interval. interval <= 0
// disables time-based rotation (Rotate still works). now is the clock;
// nil means time.Now.
func NewSTEK(interval time.Duration, now func() time.Time) (*STEK, error) {
	if now == nil {
		now = time.Now
	}
	s := &STEK{interval: interval, now: now, rand: rand.Reader}
	if _, err := io.ReadFull(s.rand, s.currentKey[:]); err != nil {
		return nil, err
	}
	s.rotatedAt = now()
	return s, nil
}

// SealKey returns the key new tickets are sealed under, rotating first
// if the interval has elapsed.
func (s *STEK) SealKey() [32]byte {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.advanceLocked()
	return s.currentKey
}

// OpenKeys returns the keys a received ticket may have been sealed
// under: the current generation and, within the grace window, the
// previous one.
func (s *STEK) OpenKeys() [][32]byte {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.advanceLocked()
	keys := [][32]byte{s.currentKey}
	if s.hasPrevious {
		keys = append(keys, s.previousKey)
	}
	return keys
}

// Rotate forces a rotation: the current key becomes the grace-window
// previous key and a fresh current key is generated.
func (s *STEK) Rotate() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.rotateLocked(); err != nil {
		return err
	}
	s.rotatedAt = s.now()
	return nil
}

// Rotations reports how many rotations have happened.
func (s *STEK) Rotations() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.rotations
}

// advanceLocked applies lazy time-based rotation. One elapsed interval
// keeps the old key in the grace window; two or more retire both
// generations (everything outstanding falls back to a full handshake).
func (s *STEK) advanceLocked() {
	if s.interval <= 0 {
		return
	}
	elapsed := s.now().Sub(s.rotatedAt)
	if elapsed < s.interval {
		return
	}
	if elapsed >= 2*s.interval {
		var fresh [32]byte
		if _, err := io.ReadFull(s.rand, fresh[:]); err != nil {
			return // entropy failure: keep serving the old key, retry next call
		}
		secmem.Wipe(s.previousKey[:])
		s.hasPrevious = false
		s.currentKey = fresh
		secmem.Wipe(fresh[:])
		s.rotations++
		s.rotatedAt = s.now()
		return
	}
	if err := s.rotateLocked(); err == nil {
		s.rotatedAt = s.rotatedAt.Add(s.interval)
	}
}

func (s *STEK) rotateLocked() error {
	var fresh [32]byte
	if _, err := io.ReadFull(s.rand, fresh[:]); err != nil {
		return err
	}
	s.previousKey = s.currentKey
	s.hasPrevious = true
	s.currentKey = fresh
	secmem.Wipe(fresh[:])
	s.rotations++
	return nil
}

// Wipe zeroizes both key generations. A host wipes its STEK at
// shutdown; outstanding tickets become unredeemable, which is the
// point.
func (s *STEK) Wipe() {
	s.mu.Lock()
	defer s.mu.Unlock()
	secmem.Wipe(s.currentKey[:])
	secmem.Wipe(s.previousKey[:])
	s.hasPrevious = false
}
