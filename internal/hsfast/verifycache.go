package hsfast

import (
	"container/list"
	"sync"
	"time"
)

// VerifyCacheStats is a point-in-time snapshot of a cache's counters.
type VerifyCacheStats struct {
	// Entries is the current number of cached verdicts (including
	// in-flight verifications).
	Entries int
	// Hits counts lookups answered from a cached verdict.
	Hits int64
	// Misses counts lookups that ran the verifier.
	Misses int64
	// Waits counts lookups that joined an in-flight verification of
	// the same key (single-flight dedup).
	Waits int64
	// Expired counts verdicts dropped by TTL.
	Expired int64
	// Evicted counts verdicts dropped by LRU capacity pressure.
	Evicted int64
	// Invalidated counts verdicts dropped by Invalidate/Flush.
	Invalidated int64
}

// HitRate is (Hits+Waits)/(Hits+Waits+Misses), or 0 before any lookup.
func (s VerifyCacheStats) HitRate() float64 {
	served := s.Hits + s.Waits
	total := served + s.Misses
	if total == 0 {
		return 0
	}
	return float64(served) / float64(total)
}

// vcEntry is one cached verdict. done is closed when the verification
// that created the entry finishes; err/at are valid only after that.
type vcEntry struct {
	hash [32]byte // lookup key: a digest of public verification inputs
	done chan struct{}
	err  error
	at   time.Time
	elem *list.Element
}

// VerifyCache memoizes expensive verification verdicts under an LRU
// with TTL expiry and single-flight dedup: concurrent lookups of the
// same key run the verifier once and share its verdict. Only successes
// are cached across calls (a failed verification is shared with the
// lookups that were in flight with it, then forgotten, so transient
// failures are retried). It implements the tls12.ChainCache interface.
//
// The key must bind every input of the verification it stands for —
// for certificate chains, a hash of the DER chain plus the expected
// name; for attestation endorsements, a hash of the authority,
// platform key, and endorsement signature. Time is deliberately not
// part of the key: the TTL bounds how long a verdict may outlive a
// certificate expiring or a measurement being revoked, and Invalidate
// or Flush drop verdicts immediately when trust changes.
type VerifyCache struct {
	mu      sync.Mutex
	max     int
	ttl     time.Duration
	now     func() time.Time
	entries map[[32]byte]*vcEntry
	order   *list.List // front = most recently used

	hits        int64
	misses      int64
	waits       int64
	expired     int64
	evicted     int64
	invalidated int64
}

// NewVerifyCache creates a cache holding up to max verdicts for at
// most ttl each. max defaults to 1024 when non-positive; ttl <= 0
// means verdicts never expire (invalidation only). now is the clock;
// nil means time.Now.
func NewVerifyCache(max int, ttl time.Duration, now func() time.Time) *VerifyCache {
	if max <= 0 {
		max = 1024
	}
	if now == nil {
		now = time.Now
	}
	return &VerifyCache{
		max:     max,
		ttl:     ttl,
		now:     now,
		entries: make(map[[32]byte]*vcEntry),
		order:   list.New(),
	}
}

// Do returns the cached verdict for key, or runs verify (once across
// concurrent callers) and caches its success. cached reports whether
// the verdict came from the cache (including joining an in-flight
// verification) rather than this caller's own verify run.
func (c *VerifyCache) Do(key [32]byte, verify func() error) (cached bool, err error) {
	c.mu.Lock()
	if e, ok := c.entries[key]; ok {
		select {
		case <-e.done:
			// Completed entry: only successes stay in the map, so a
			// non-expired entry is a valid verdict.
			if c.ttl <= 0 || c.now().Sub(e.at) <= c.ttl {
				c.hits++
				c.order.MoveToFront(e.elem)
				c.mu.Unlock()
				return true, nil
			}
			c.expired++
			c.removeLocked(e)
		default:
			// Same key is being verified right now: join it.
			c.waits++
			c.mu.Unlock()
			<-e.done
			return true, e.err
		}
	}
	c.misses++
	e := &vcEntry{hash: key, done: make(chan struct{})}
	e.elem = c.order.PushFront(e)
	c.entries[key] = e
	for len(c.entries) > c.max {
		oldest := c.order.Back().Value.(*vcEntry)
		c.removeLocked(oldest)
		c.evicted++
	}
	c.mu.Unlock()

	err = verify()

	c.mu.Lock()
	e.err = err
	e.at = c.now()
	if err != nil {
		// Share the failure with in-flight waiters, then forget it.
		if c.entries[key] == e {
			c.removeLocked(e)
		}
	}
	close(e.done)
	c.mu.Unlock()
	return false, err
}

// Invalidate drops the verdict for key, if any. An in-flight
// verification removed here still completes and its waiters share the
// result, but the verdict is not cached for later lookups.
func (c *VerifyCache) Invalidate(key [32]byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.entries[key]; ok {
		c.removeLocked(e)
		c.invalidated++
	}
}

// Flush drops every cached verdict.
func (c *VerifyCache) Flush() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.invalidated += int64(len(c.entries))
	c.entries = make(map[[32]byte]*vcEntry)
	c.order.Init()
}

// Stats snapshots the cache's counters.
func (c *VerifyCache) Stats() VerifyCacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return VerifyCacheStats{
		Entries:     len(c.entries),
		Hits:        c.hits,
		Misses:      c.misses,
		Waits:       c.waits,
		Expired:     c.expired,
		Evicted:     c.evicted,
		Invalidated: c.invalidated,
	}
}

func (c *VerifyCache) removeLocked(e *vcEntry) {
	delete(c.entries, e.hash)
	c.order.Remove(e.elem)
}
