// Package httpx is a minimal HTTP/1.1 implementation over arbitrary
// byte streams. The paper's prototype middlebox is "a simple HTTP proxy
// that performs HTTP header insertion" (§5); this package provides the
// request/response codec that the example applications and experiment
// workloads build on. Bodies are Content-Length delimited (the subset
// the experiments need); chunked transfer encoding is not implemented.
package httpx

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// Header is a simple case-insensitive header map (canonicalized to the
// common Title-Case form on write).
type Header map[string]string

// Get returns the header value (case-insensitive key).
func (h Header) Get(key string) string {
	for k, v := range h {
		if strings.EqualFold(k, key) {
			return v
		}
	}
	return ""
}

// Set replaces a header value, normalizing duplicate spellings.
func (h Header) Set(key, value string) {
	for k := range h {
		if strings.EqualFold(k, key) {
			delete(h, k)
		}
	}
	h[key] = value
}

// writeSorted writes headers deterministically (tests compare bytes).
func (h Header) writeSorted(w *bufio.Writer) {
	keys := make([]string, 0, len(h))
	for k := range h {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(w, "%s: %s\r\n", k, h[k])
	}
}

// Request is an HTTP/1.1 request.
type Request struct {
	Method string
	Path   string
	Host   string
	Header Header
	Body   []byte
}

// Response is an HTTP/1.1 response.
type Response struct {
	StatusCode int
	Reason     string
	Header     Header
	Body       []byte
}

// maxLineLen bounds header lines defensively.
const maxLineLen = 64 << 10

// maxBodyLen bounds accepted bodies (64 MiB).
const maxBodyLen = 64 << 20

var errLineTooLong = errors.New("httpx: header line too long")

func readLine(br *bufio.Reader) (string, error) {
	line, err := br.ReadString('\n')
	if err != nil {
		return "", err
	}
	if len(line) > maxLineLen {
		return "", errLineTooLong
	}
	return strings.TrimRight(line, "\r\n"), nil
}

func readHeaders(br *bufio.Reader) (Header, error) {
	h := make(Header)
	for {
		line, err := readLine(br)
		if err != nil {
			return nil, err
		}
		if line == "" {
			return h, nil
		}
		name, value, ok := strings.Cut(line, ":")
		if !ok {
			return nil, fmt.Errorf("httpx: malformed header line %q", line)
		}
		h.Set(strings.TrimSpace(name), strings.TrimSpace(value))
	}
}

func readBody(br *bufio.Reader, h Header) ([]byte, error) {
	cl := h.Get("Content-Length")
	if cl == "" {
		return nil, nil
	}
	n, err := strconv.Atoi(cl)
	if err != nil || n < 0 || n > maxBodyLen {
		return nil, fmt.Errorf("httpx: bad Content-Length %q", cl)
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(br, body); err != nil {
		return nil, err
	}
	return body, nil
}

// ReadRequest parses one request from br.
func ReadRequest(br *bufio.Reader) (*Request, error) {
	line, err := readLine(br)
	if err != nil {
		return nil, err
	}
	parts := strings.SplitN(line, " ", 3)
	if len(parts) != 3 || !strings.HasPrefix(parts[2], "HTTP/1.") {
		return nil, fmt.Errorf("httpx: malformed request line %q", line)
	}
	req := &Request{Method: parts[0], Path: parts[1]}
	if req.Header, err = readHeaders(br); err != nil {
		return nil, err
	}
	req.Host = req.Header.Get("Host")
	if req.Body, err = readBody(br, req.Header); err != nil {
		return nil, err
	}
	return req, nil
}

// Write serializes the request.
func (r *Request) Write(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "%s %s HTTP/1.1\r\n", r.Method, r.Path)
	h := r.Header
	if h == nil {
		h = make(Header)
	}
	if r.Host != "" && h.Get("Host") == "" {
		h.Set("Host", r.Host)
	}
	if len(r.Body) > 0 || r.Method == "POST" || r.Method == "PUT" {
		h.Set("Content-Length", strconv.Itoa(len(r.Body)))
	}
	h.writeSorted(bw)
	bw.WriteString("\r\n")
	bw.Write(r.Body)
	return bw.Flush()
}

// ReadResponse parses one response from br.
func ReadResponse(br *bufio.Reader) (*Response, error) {
	line, err := readLine(br)
	if err != nil {
		return nil, err
	}
	parts := strings.SplitN(line, " ", 3)
	if len(parts) < 2 || !strings.HasPrefix(parts[0], "HTTP/1.") {
		return nil, fmt.Errorf("httpx: malformed status line %q", line)
	}
	code, err := strconv.Atoi(parts[1])
	if err != nil {
		return nil, fmt.Errorf("httpx: malformed status code in %q", line)
	}
	resp := &Response{StatusCode: code}
	if len(parts) == 3 {
		resp.Reason = parts[2]
	}
	if resp.Header, err = readHeaders(br); err != nil {
		return nil, err
	}
	if resp.Body, err = readBody(br, resp.Header); err != nil {
		return nil, err
	}
	return resp, nil
}

// Write serializes the response.
func (r *Response) Write(w io.Writer) error {
	bw := bufio.NewWriter(w)
	reason := r.Reason
	if reason == "" {
		reason = StatusText(r.StatusCode)
	}
	fmt.Fprintf(bw, "HTTP/1.1 %d %s\r\n", r.StatusCode, reason)
	h := r.Header
	if h == nil {
		h = make(Header)
	}
	h.Set("Content-Length", strconv.Itoa(len(r.Body)))
	h.writeSorted(bw)
	bw.WriteString("\r\n")
	bw.Write(r.Body)
	return bw.Flush()
}

// StatusText returns a reason phrase for common status codes.
func StatusText(code int) string {
	switch code {
	case 200:
		return "OK"
	case 301:
		return "Moved Permanently"
	case 302:
		return "Found"
	case 400:
		return "Bad Request"
	case 403:
		return "Forbidden"
	case 404:
		return "Not Found"
	case 500:
		return "Internal Server Error"
	}
	return "Status"
}

// Handler produces a response for a request.
type Handler func(*Request) *Response

// Serve reads requests from rw and writes handler responses until EOF
// or error (a tiny keep-alive HTTP/1.1 server loop for one connection).
func Serve(rw io.ReadWriter, handler Handler) error {
	br := bufio.NewReader(rw)
	for {
		req, err := ReadRequest(br)
		if err != nil {
			if err == io.EOF || errors.Is(err, io.ErrUnexpectedEOF) {
				return nil
			}
			return err
		}
		resp := handler(req)
		if resp == nil {
			resp = &Response{StatusCode: 500}
		}
		if err := resp.Write(rw); err != nil {
			return err
		}
	}
}

// Do writes a request and reads the response over rw (one exchange on a
// persistent connection).
func Do(rw io.ReadWriter, req *Request) (*Response, error) {
	if err := req.Write(rw); err != nil {
		return nil, err
	}
	return ReadResponse(bufio.NewReader(rw))
}

// DoAll performs a request over a fresh reader; use Client for multiple
// requests on one connection.
type Client struct {
	rw io.ReadWriter
	br *bufio.Reader
}

// NewClient wraps a connection for repeated requests.
func NewClient(rw io.ReadWriter) *Client {
	return &Client{rw: rw, br: bufio.NewReader(rw)}
}

// Do performs one request/response exchange.
func (c *Client) Do(req *Request) (*Response, error) {
	if err := req.Write(c.rw); err != nil {
		return nil, err
	}
	return ReadResponse(c.br)
}
