package httpx

import (
	"bufio"
	"bytes"
	"strings"
	"testing"

	"repro/internal/netsim"
)

func TestRequestRoundTrip(t *testing.T) {
	req := &Request{
		Method: "POST",
		Path:   "/submit?x=1",
		Host:   "origin.example",
		Header: Header{"X-Custom": "value", "Via": "1.1 proxy"},
		Body:   []byte("form data here"),
	}
	var buf bytes.Buffer
	if err := req.Write(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadRequest(bufio.NewReader(&buf))
	if err != nil {
		t.Fatal(err)
	}
	if got.Method != "POST" || got.Path != "/submit?x=1" || got.Host != "origin.example" {
		t.Fatalf("request line corrupted: %+v", got)
	}
	if got.Header.Get("x-custom") != "value" {
		t.Fatal("case-insensitive header lookup failed")
	}
	if !bytes.Equal(got.Body, req.Body) {
		t.Fatalf("body = %q", got.Body)
	}
}

func TestResponseRoundTrip(t *testing.T) {
	resp := &Response{
		StatusCode: 302,
		Header:     Header{"Location": "https://elsewhere.example/"},
		Body:       []byte("moved"),
	}
	var buf bytes.Buffer
	if err := resp.Write(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadResponse(bufio.NewReader(&buf))
	if err != nil {
		t.Fatal(err)
	}
	if got.StatusCode != 302 || got.Reason != "Found" {
		t.Fatalf("status = %d %q", got.StatusCode, got.Reason)
	}
	if got.Header.Get("location") != "https://elsewhere.example/" {
		t.Fatal("Location header lost")
	}
	if string(got.Body) != "moved" {
		t.Fatalf("body = %q", got.Body)
	}
}

func TestEmptyBody(t *testing.T) {
	resp := &Response{StatusCode: 404, Header: Header{}}
	var buf bytes.Buffer
	resp.Write(&buf) //nolint:errcheck
	got, err := ReadResponse(bufio.NewReader(&buf))
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Body) != 0 {
		t.Fatalf("body = %q", got.Body)
	}
}

func TestHeaderSetReplacesCaseVariants(t *testing.T) {
	h := Header{"content-length": "5"}
	h.Set("Content-Length", "10")
	if len(h) != 1 || h.Get("CONTENT-LENGTH") != "10" {
		t.Fatalf("header = %v", h)
	}
}

func TestMalformedInputs(t *testing.T) {
	cases := []string{
		"NOT A REQUEST LINE\r\n\r\n",
		"GET /\r\n\r\n",                       // missing version
		"GET / HTTP/1.1\r\nBadHeader\r\n\r\n", // malformed header
		"GET / HTTP/1.1\r\nContent-Length: -5\r\n\r\n",
		"GET / HTTP/1.1\r\nContent-Length: abc\r\n\r\n",
	}
	for _, c := range cases {
		if _, err := ReadRequest(bufio.NewReader(strings.NewReader(c))); err == nil {
			t.Errorf("malformed request parsed: %q", c)
		}
	}
	if _, err := ReadResponse(bufio.NewReader(strings.NewReader("HTTP/1.1 abc OK\r\n\r\n"))); err == nil {
		t.Error("malformed status code parsed")
	}
}

func TestServeAndClientKeepAlive(t *testing.T) {
	a, b := netsim.Pipe()
	defer a.Close()
	defer b.Close()
	go Serve(b, func(req *Request) *Response { //nolint:errcheck
		return &Response{StatusCode: 200, Header: Header{}, Body: []byte("echo:" + req.Path)}
	})
	client := NewClient(a)
	for _, path := range []string{"/one", "/two", "/three"} {
		resp, err := client.Do(&Request{Method: "GET", Path: path, Host: "h", Header: Header{}})
		if err != nil {
			t.Fatal(err)
		}
		if string(resp.Body) != "echo:"+path {
			t.Fatalf("got %q", resp.Body)
		}
	}
}

func TestServeNilResponse(t *testing.T) {
	a, b := netsim.Pipe()
	defer a.Close()
	defer b.Close()
	go Serve(b, func(*Request) *Response { return nil }) //nolint:errcheck
	resp, err := Do(a, &Request{Method: "GET", Path: "/", Header: Header{}})
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != 500 {
		t.Fatalf("nil handler response → %d, want 500", resp.StatusCode)
	}
}

func TestLargeBody(t *testing.T) {
	body := bytes.Repeat([]byte("abcdefgh"), 1<<16) // 512 KiB
	resp := &Response{StatusCode: 200, Header: Header{}, Body: body}
	var buf bytes.Buffer
	if err := resp.Write(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadResponse(bufio.NewReader(&buf))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Body, body) {
		t.Fatal("large body corrupted")
	}
}
