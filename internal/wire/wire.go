// Package wire provides low-level helpers for building and parsing the
// length-prefixed binary structures used throughout TLS and mbTLS.
//
// It is a deliberately small subset of the golang.org/x/crypto/cryptobyte
// API, reimplemented on the standard library only. A Builder appends
// big-endian integers and length-prefixed byte strings to a buffer; a
// Parser consumes them. Parsers never panic on malformed input: every
// Read* method reports failure via its boolean result, and once a read
// fails the Parser stays failed.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Builder incrementally constructs a binary message. The zero value is
// ready to use.
type Builder struct {
	buf []byte
}

// NewBuilder returns a Builder that appends to buf. Pass nil to start
// with an empty buffer.
func NewBuilder(buf []byte) *Builder {
	return &Builder{buf: buf}
}

// Bytes returns the bytes written so far. The returned slice aliases the
// Builder's internal buffer and is invalidated by further writes.
func (b *Builder) Bytes() []byte { return b.buf }

// Len returns the number of bytes written so far.
func (b *Builder) Len() int { return len(b.buf) }

// AddUint8 appends a single byte.
func (b *Builder) AddUint8(v uint8) { b.buf = append(b.buf, v) }

// AddUint16 appends a big-endian 16-bit integer.
func (b *Builder) AddUint16(v uint16) {
	b.buf = binary.BigEndian.AppendUint16(b.buf, v)
}

// AddUint24 appends a big-endian 24-bit integer. Values that do not fit
// in 24 bits are truncated to their low 24 bits; callers validate sizes
// before building.
func (b *Builder) AddUint24(v uint32) {
	b.buf = append(b.buf, byte(v>>16), byte(v>>8), byte(v))
}

// AddUint32 appends a big-endian 32-bit integer.
func (b *Builder) AddUint32(v uint32) {
	b.buf = binary.BigEndian.AppendUint32(b.buf, v)
}

// AddUint64 appends a big-endian 64-bit integer.
func (b *Builder) AddUint64(v uint64) {
	b.buf = binary.BigEndian.AppendUint64(b.buf, v)
}

// AddBytes appends raw bytes with no length prefix.
func (b *Builder) AddBytes(p []byte) { b.buf = append(b.buf, p...) }

// AddUint8Prefixed appends a block built by f, preceded by its length as
// an 8-bit integer.
func (b *Builder) AddUint8Prefixed(f func(*Builder)) { b.addPrefixed(1, f) }

// AddUint16Prefixed appends a block built by f, preceded by its length as
// a big-endian 16-bit integer.
func (b *Builder) AddUint16Prefixed(f func(*Builder)) { b.addPrefixed(2, f) }

// AddUint24Prefixed appends a block built by f, preceded by its length as
// a big-endian 24-bit integer.
func (b *Builder) AddUint24Prefixed(f func(*Builder)) { b.addPrefixed(3, f) }

func (b *Builder) addPrefixed(prefixLen int, f func(*Builder)) {
	start := len(b.buf)
	for i := 0; i < prefixLen; i++ {
		b.buf = append(b.buf, 0)
	}
	f(b)
	length := len(b.buf) - start - prefixLen
	if length < 0 || length >= 1<<(8*prefixLen) {
		// Structures this large are a programming error; fail loudly
		// rather than emit a corrupt frame.
		panic(fmt.Sprintf("wire: block length %d overflows %d-byte prefix", length, prefixLen))
	}
	for i := 0; i < prefixLen; i++ {
		b.buf[start+i] = byte(length >> (8 * (prefixLen - 1 - i)))
	}
}

// ErrTruncated is returned by Parser.Err when input ended before a
// complete structure was read.
var ErrTruncated = errors.New("wire: truncated input")

// Parser consumes a binary message produced by a Builder (or a peer's
// implementation of the same formats).
type Parser struct {
	buf    []byte
	failed bool
}

// NewParser returns a Parser reading from buf. The Parser does not copy
// buf; callers must not mutate it while parsing.
func NewParser(buf []byte) *Parser {
	return &Parser{buf: buf}
}

// Empty reports whether all input has been consumed (and no read has
// failed).
func (p *Parser) Empty() bool { return !p.failed && len(p.buf) == 0 }

// Len returns the number of unread bytes.
func (p *Parser) Len() int { return len(p.buf) }

// Failed reports whether any read has failed.
func (p *Parser) Failed() bool { return p.failed }

// Err returns ErrTruncated if any read has failed, or an error if
// trailing garbage remains; otherwise nil.
func (p *Parser) Err() error {
	if p.failed {
		return ErrTruncated
	}
	if len(p.buf) != 0 {
		return fmt.Errorf("wire: %d trailing bytes", len(p.buf))
	}
	return nil
}

func (p *Parser) take(n int) ([]byte, bool) {
	if p.failed || len(p.buf) < n || n < 0 {
		p.failed = true
		return nil, false
	}
	v := p.buf[:n]
	p.buf = p.buf[n:]
	return v, true
}

// ReadUint8 reads a single byte.
func (p *Parser) ReadUint8(v *uint8) bool {
	b, ok := p.take(1)
	if !ok {
		return false
	}
	*v = b[0]
	return true
}

// ReadUint16 reads a big-endian 16-bit integer.
func (p *Parser) ReadUint16(v *uint16) bool {
	b, ok := p.take(2)
	if !ok {
		return false
	}
	*v = binary.BigEndian.Uint16(b)
	return true
}

// ReadUint24 reads a big-endian 24-bit integer into a uint32.
func (p *Parser) ReadUint24(v *uint32) bool {
	b, ok := p.take(3)
	if !ok {
		return false
	}
	*v = uint32(b[0])<<16 | uint32(b[1])<<8 | uint32(b[2])
	return true
}

// ReadUint32 reads a big-endian 32-bit integer.
func (p *Parser) ReadUint32(v *uint32) bool {
	b, ok := p.take(4)
	if !ok {
		return false
	}
	*v = binary.BigEndian.Uint32(b)
	return true
}

// ReadUint64 reads a big-endian 64-bit integer.
func (p *Parser) ReadUint64(v *uint64) bool {
	b, ok := p.take(8)
	if !ok {
		return false
	}
	*v = binary.BigEndian.Uint64(b)
	return true
}

// ReadBytes reads exactly n raw bytes. The result aliases the input.
func (p *Parser) ReadBytes(v *[]byte, n int) bool {
	b, ok := p.take(n)
	if !ok {
		return false
	}
	*v = b
	return true
}

// CopyBytes reads exactly len(dst) bytes into dst.
func (p *Parser) CopyBytes(dst []byte) bool {
	b, ok := p.take(len(dst))
	if !ok {
		return false
	}
	copy(dst, b)
	return true
}

// ReadUint8Prefixed reads an 8-bit length followed by that many bytes.
func (p *Parser) ReadUint8Prefixed(v *[]byte) bool { return p.readPrefixed(1, v) }

// ReadUint16Prefixed reads a big-endian 16-bit length followed by that
// many bytes.
func (p *Parser) ReadUint16Prefixed(v *[]byte) bool { return p.readPrefixed(2, v) }

// ReadUint24Prefixed reads a big-endian 24-bit length followed by that
// many bytes.
func (p *Parser) ReadUint24Prefixed(v *[]byte) bool { return p.readPrefixed(3, v) }

func (p *Parser) readPrefixed(prefixLen int, v *[]byte) bool {
	b, ok := p.take(prefixLen)
	if !ok {
		return false
	}
	var n int
	for _, c := range b {
		n = n<<8 | int(c)
	}
	b, ok = p.take(n)
	if !ok {
		return false
	}
	*v = b
	return true
}

// ReadParser reads a length-prefixed block and returns a sub-Parser over
// it, so nested structures can be parsed without slicing arithmetic.
func (p *Parser) ReadParser(prefixLen int, sub **Parser) bool {
	var b []byte
	if !p.readPrefixed(prefixLen, &b) {
		return false
	}
	*sub = NewParser(b)
	return true
}

// Rest consumes and returns all remaining bytes.
func (p *Parser) Rest() []byte {
	b := p.buf
	p.buf = nil
	return b
}
