package wire

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestScalarRoundTrip(t *testing.T) {
	b := NewBuilder(nil)
	b.AddUint8(0x12)
	b.AddUint16(0x3456)
	b.AddUint24(0x789ABC)
	b.AddUint32(0xDEF01234)
	b.AddUint64(0x56789ABCDEF01234)
	b.AddBytes([]byte{1, 2, 3})

	p := NewParser(b.Bytes())
	var v8 uint8
	var v16 uint16
	var v24, v32 uint32
	var v64 uint64
	var raw []byte
	if !p.ReadUint8(&v8) || !p.ReadUint16(&v16) || !p.ReadUint24(&v24) ||
		!p.ReadUint32(&v32) || !p.ReadUint64(&v64) || !p.ReadBytes(&raw, 3) {
		t.Fatal("parse failed")
	}
	if v8 != 0x12 || v16 != 0x3456 || v24 != 0x789ABC || v32 != 0xDEF01234 || v64 != 0x56789ABCDEF01234 {
		t.Fatalf("got %x %x %x %x %x", v8, v16, v24, v32, v64)
	}
	if !bytes.Equal(raw, []byte{1, 2, 3}) {
		t.Fatalf("raw = %v", raw)
	}
	if !p.Empty() {
		t.Fatal("trailing bytes")
	}
}

// TestPropertyUintRoundTrip: every integer written is read back
// identically.
func TestPropertyUintRoundTrip(t *testing.T) {
	f := func(a uint8, b16 uint16, c32 uint32, d64 uint64) bool {
		b := NewBuilder(nil)
		b.AddUint8(a)
		b.AddUint16(b16)
		b.AddUint24(c32 & 0xFFFFFF)
		b.AddUint32(c32)
		b.AddUint64(d64)
		p := NewParser(b.Bytes())
		var ra uint8
		var rb uint16
		var rc24, rc32 uint32
		var rd uint64
		return p.ReadUint8(&ra) && p.ReadUint16(&rb) && p.ReadUint24(&rc24) &&
			p.ReadUint32(&rc32) && p.ReadUint64(&rd) && p.Empty() &&
			ra == a && rb == b16 && rc24 == c32&0xFFFFFF && rc32 == c32 && rd == d64
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyPrefixedRoundTrip: length-prefixed blocks of arbitrary
// content round-trip at all three prefix widths.
func TestPropertyPrefixedRoundTrip(t *testing.T) {
	f := func(payload []byte) bool {
		if len(payload) > 250 {
			payload = payload[:250] // keep within the uint8 prefix
		}
		b := NewBuilder(nil)
		b.AddUint8Prefixed(func(b *Builder) { b.AddBytes(payload) })
		b.AddUint16Prefixed(func(b *Builder) { b.AddBytes(payload) })
		b.AddUint24Prefixed(func(b *Builder) { b.AddBytes(payload) })
		p := NewParser(b.Bytes())
		var r1, r2, r3 []byte
		return p.ReadUint8Prefixed(&r1) && p.ReadUint16Prefixed(&r2) && p.ReadUint24Prefixed(&r3) &&
			p.Empty() && bytes.Equal(r1, payload) && bytes.Equal(r2, payload) && bytes.Equal(r3, payload)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyTruncationNeverPanics: parsing any truncation of a valid
// message fails cleanly (no panic) and reports failure.
func TestPropertyTruncationNeverPanics(t *testing.T) {
	b := NewBuilder(nil)
	b.AddUint16Prefixed(func(b *Builder) { b.AddBytes(bytes.Repeat([]byte{7}, 100)) })
	b.AddUint32(42)
	b.AddUint24Prefixed(func(b *Builder) { b.AddBytes(bytes.Repeat([]byte{9}, 50)) })
	full := b.Bytes()

	for cut := 0; cut < len(full); cut++ {
		p := NewParser(full[:cut])
		var block []byte
		var v uint32
		ok := p.ReadUint16Prefixed(&block) && p.ReadUint32(&v) && p.ReadUint24Prefixed(&block)
		if ok {
			t.Fatalf("truncated parse at %d succeeded", cut)
		}
		if !p.Failed() && p.Len() == 0 {
			continue // consumed exactly at a boundary; fine
		}
		if p.Err() == nil {
			t.Fatalf("cut=%d: failed parse reported no error", cut)
		}
	}
}

// TestPropertyRandomBytesNeverPanic: feeding arbitrary bytes through
// every parser method never panics.
func TestPropertyRandomBytesNeverPanic(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 2000; i++ {
		data := make([]byte, rng.Intn(64))
		rng.Read(data)
		p := NewParser(data)
		var b []byte
		var v8 uint8
		var v16 uint16
		var v32 uint32
		var v64 uint64
		p.ReadUint8Prefixed(&b)
		p.ReadUint16Prefixed(&b)
		p.ReadUint24Prefixed(&b)
		p.ReadUint8(&v8)
		p.ReadUint16(&v16)
		p.ReadUint32(&v32)
		p.ReadUint64(&v64)
		_ = p.Rest()
		_ = p.Err()
	}
}

func TestNestedParser(t *testing.T) {
	b := NewBuilder(nil)
	b.AddUint16Prefixed(func(b *Builder) {
		b.AddUint8(1)
		b.AddUint8Prefixed(func(b *Builder) { b.AddBytes([]byte("inner")) })
	})
	p := NewParser(b.Bytes())
	var sub *Parser
	if !p.ReadParser(2, &sub) || !p.Empty() {
		t.Fatal("outer parse failed")
	}
	var tag uint8
	var inner []byte
	if !sub.ReadUint8(&tag) || !sub.ReadUint8Prefixed(&inner) || !sub.Empty() {
		t.Fatal("inner parse failed")
	}
	if tag != 1 || string(inner) != "inner" {
		t.Fatalf("got tag=%d inner=%q", tag, inner)
	}
}

func TestFailedParserStaysFailed(t *testing.T) {
	p := NewParser([]byte{1})
	var v32 uint32
	if p.ReadUint32(&v32) {
		t.Fatal("short read succeeded")
	}
	var v8 uint8
	if p.ReadUint8(&v8) {
		t.Fatal("read after failure succeeded")
	}
	if !p.Failed() {
		t.Fatal("parser not marked failed")
	}
}

func TestBuilderOverflowPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("oversized uint8-prefixed block did not panic")
		}
	}()
	b := NewBuilder(nil)
	b.AddUint8Prefixed(func(b *Builder) { b.AddBytes(make([]byte, 300)) })
}
