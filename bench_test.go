package mbtls_test

// Benchmarks regenerating the paper's evaluation as testing.B targets.
// Mapping to the paper (§5):
//
//	BenchmarkHandshake/*            → Figure 5 (per-configuration handshake cost)
//	BenchmarkDataPlane/*            → Figure 7 (middlebox record processing,
//	                                  forward vs re-encrypt, host vs enclave)
//	BenchmarkTable2Site             → Table 2 (one filtered-network handshake)
//	BenchmarkLegacySiteFetch        → §5.1 (one legacy-site fetch via the proxy)
//	BenchmarkAblation*              → DESIGN.md §5 design-choice ablations
//
// The full paper-shaped reports (means, CIs, all rows/series) come from
// cmd/mbtls-bench; these benches give allocation and per-op costs.

import (
	"fmt"
	"net"
	"testing"
	"time"

	mbtls "repro"
	"repro/internal/certs"
	"repro/internal/core"
	"repro/internal/enclave"
	"repro/internal/netsim"
	"repro/internal/splittls"
	"repro/internal/tls12"
)

// benchPKI is shared, read-only fixture state.
type benchPKI struct {
	ca         *certs.CA
	serverCert *tls12.Certificate
	mbCert     *tls12.Certificate
	splitCA    *certs.CA
}

func newBenchPKI(b *testing.B) *benchPKI {
	b.Helper()
	ca, err := certs.NewCA("bench root")
	if err != nil {
		b.Fatal(err)
	}
	serverCert, err := ca.Issue("server.example", []string{"server.example"}, nil)
	if err != nil {
		b.Fatal(err)
	}
	mbCert, err := ca.Issue("mbox.example", []string{"mbox.example"}, nil)
	if err != nil {
		b.Fatal(err)
	}
	splitCA, err := certs.NewCA("bench split root")
	if err != nil {
		b.Fatal(err)
	}
	return &benchPKI{ca: ca, serverCert: serverCert, mbCert: mbCert, splitCA: splitCA}
}

// buildChain wires client → middleboxes → server over in-memory pipes.
func buildChain(b *testing.B, pki *benchPKI, clientMboxes, serverMboxes int) (net.Conn, net.Conn) {
	b.Helper()
	left, right := netsim.Pipe()
	prev := net.Conn(right)
	mk := func(mode core.Mode) {
		mb, err := mbtls.NewMiddlebox(mbtls.MiddleboxConfig{Mode: mode, Certificate: pki.mbCert})
		if err != nil {
			b.Fatal(err)
		}
		upL, upR := netsim.Pipe()
		go mb.Handle(prev, upL) //nolint:errcheck
		prev = upR
	}
	for i := 0; i < clientMboxes; i++ {
		mk(mbtls.ClientSide)
	}
	for i := 0; i < serverMboxes; i++ {
		mk(mbtls.ServerSide)
	}
	return left, prev
}

// runMbTLSSetup performs one full mbTLS session establishment.
func runMbTLSSetup(b *testing.B, pki *benchPKI, clientMboxes, serverMboxes int) {
	b.Helper()
	clientEnd, serverEnd := buildChain(b, pki, clientMboxes, serverMboxes)
	sch := make(chan error, 1)
	var ssess *mbtls.Session
	go func() {
		var err error
		ssess, err = mbtls.Accept(serverEnd, &mbtls.ServerConfig{
			TLS:               &mbtls.TLSConfig{Certificate: pki.serverCert},
			AcceptMiddleboxes: true,
			MiddleboxTLS:      &mbtls.TLSConfig{RootCAs: pki.ca.Pool()},
		})
		sch <- err
	}()
	csess, err := mbtls.Dial(clientEnd, &mbtls.ClientConfig{
		TLS:          &mbtls.TLSConfig{RootCAs: pki.ca.Pool(), ServerName: "server.example"},
		MiddleboxTLS: &mbtls.TLSConfig{RootCAs: pki.ca.Pool()},
	})
	if err != nil {
		b.Fatal(err)
	}
	if err := <-sch; err != nil {
		b.Fatal(err)
	}
	csess.Close()
	ssess.Close()
}

// BenchmarkHandshake reproduces Figure 5's configurations as per-op
// costs of complete session establishment.
func BenchmarkHandshake(b *testing.B) {
	pki := newBenchPKI(b)

	b.Run("TLS", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			cp, sp := netsim.Pipe()
			server := tls12.NewServerConn(sp, &tls12.Config{Certificate: pki.serverCert})
			errc := make(chan error, 1)
			go func() { errc <- server.Handshake() }()
			client := tls12.NewClientConn(cp, &tls12.Config{RootCAs: pki.ca.Pool(), ServerName: "server.example"})
			if err := client.Handshake(); err != nil {
				b.Fatal(err)
			}
			if err := <-errc; err != nil {
				b.Fatal(err)
			}
			client.Close()
			server.Close()
		}
	})
	b.Run("SplitTLS_1mbox", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			c0a, c0b := netsim.Pipe()
			c1a, c1b := netsim.Pipe()
			ic := &splittls.Interceptor{CA: pki.splitCA, Upstream: &tls12.Config{RootCAs: pki.ca.Pool()}, VerifyUpstream: true}
			go ic.Handle(c0b, c1a) //nolint:errcheck
			server := tls12.NewServerConn(c1b, &tls12.Config{Certificate: pki.serverCert})
			errc := make(chan error, 1)
			go func() { errc <- server.Handshake() }()
			client := tls12.NewClientConn(c0a, &tls12.Config{RootCAs: pki.splitCA.Pool(), ServerName: "server.example"})
			if err := client.Handshake(); err != nil {
				b.Fatal(err)
			}
			if err := <-errc; err != nil {
				b.Fatal(err)
			}
			client.Close()
			server.Close()
		}
	})
	for _, cfg := range []struct {
		name                       string
		clientMboxes, serverMboxes int
	}{
		{"MbTLS_0mbox", 0, 0},
		{"MbTLS_1clientMbox", 1, 0},
		{"MbTLS_1serverMbox", 0, 1},
		{"MbTLS_2serverMboxes", 0, 2},
		{"MbTLS_3serverMboxes", 0, 3},
	} {
		b.Run(cfg.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				runMbTLSSetup(b, pki, cfg.clientMboxes, cfg.serverMboxes)
			}
		})
	}
}

// benchBatch is the records-per-op batch size of the data-plane
// benchmarks, matching the relay's batched fast path.
const benchBatch = 16

// runDataPlaneBatch drives one benchmark configuration: each op seals a
// batch (untimed), runs it through the middlebox stage (timed), and
// drains it at the sink (untimed). The timed region must be
// allocation-free; b.ReportAllocs makes the claim checkable.
func runDataPlaneBatch(b *testing.B, h *core.BenchHarness, size int) {
	b.Helper()
	plaintext := core.RandomPlaintext(size)
	srcBuf := make([]byte, 0, benchBatch*(size+64))
	dst := make([]byte, 0, cap(srcBuf))
	recs := make([]tls12.RawRecord, 0, benchBatch)

	oneOp := func() {
		var err error
		var n int
		dst, n, err = h.ProcessBatch(recs, dst[:0])
		if err != nil {
			b.Fatal(err)
		}
		if n != benchBatch {
			b.Fatalf("processed %d of %d records", n, benchBatch)
		}
	}
	seal := func() {
		srcBuf = srcBuf[:0]
		recs = recs[:0]
		for i := 0; i < benchBatch; i++ {
			var rec tls12.RawRecord
			srcBuf, rec = h.SealInto(srcBuf, plaintext)
			recs = append(recs, rec)
		}
	}
	drain := func() {
		if _, err := h.DrainWire(dst); err != nil {
			b.Fatal(err)
		}
	}

	// Warm up buffer growth and pools before measuring.
	seal()
	oneOp()
	drain()

	b.SetBytes(int64(size * benchBatch))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		seal()
		b.StartTimer()
		oneOp()
		b.StopTimer()
		drain()
		b.StartTimer()
	}
}

// BenchmarkDataPlane reproduces Figure 7's cells as per-batch costs of
// the middlebox stage alone. The acceptance bar for the zero-allocation
// pipeline is 0 allocs/op on every Forward and Reencrypt cell.
func BenchmarkDataPlane(b *testing.B) {
	authority, err := enclave.NewAuthority()
	if err != nil {
		b.Fatal(err)
	}
	platform, err := authority.NewPlatform()
	if err != nil {
		b.Fatal(err)
	}
	platform.SetBoundaryCost(time.Microsecond)

	for _, reencrypt := range []bool{false, true} {
		for _, sgx := range []bool{false, true} {
			mode := "Forward"
			if reencrypt {
				mode = "Reencrypt"
			}
			env := "Host"
			if sgx {
				env = "Enclave"
			}
			for _, size := range []int{512, 1024, 2048, 4096, 8192, 12288, 16384} {
				b.Run(fmt.Sprintf("%s/%s/%d", mode, env, size), func(b *testing.B) {
					var encl *enclave.Enclave
					if sgx {
						encl = platform.CreateEnclave(enclave.CodeImage{Name: "bench", Version: "1"})
					}
					h, err := core.NewBenchHarness(encl, tls12.TLS_ECDHE_ECDSA_WITH_AES_256_GCM_SHA384, reencrypt)
					if err != nil {
						b.Fatal(err)
					}
					runDataPlaneBatch(b, h, size)
				})
			}
		}
	}
}

// BenchmarkTable2Site measures one handshake through a typical
// filtered client network (Table 2's unit of work).
func BenchmarkTable2Site(b *testing.B) {
	pki := newBenchPKI(b)
	for i := 0; i < b.N; i++ {
		clientEnd, filteredEnd := netsim.FilteredLink(netsim.SiteFilters(netsim.Enterprise, i)...)
		mb, err := mbtls.NewMiddlebox(mbtls.MiddleboxConfig{Mode: mbtls.ClientSide, Certificate: pki.mbCert})
		if err != nil {
			b.Fatal(err)
		}
		upA, upB := netsim.Pipe()
		go mb.Handle(filteredEnd, upA) //nolint:errcheck
		sch := make(chan error, 1)
		var ssess *mbtls.Session
		go func() {
			var err error
			ssess, err = mbtls.Accept(upB, &mbtls.ServerConfig{TLS: &mbtls.TLSConfig{Certificate: pki.serverCert}})
			sch <- err
		}()
		csess, err := mbtls.Dial(clientEnd, &mbtls.ClientConfig{
			TLS: &mbtls.TLSConfig{RootCAs: pki.ca.Pool(), ServerName: "server.example"},
		})
		if err != nil {
			b.Fatal(err)
		}
		if err := <-sch; err != nil {
			b.Fatal(err)
		}
		csess.Close()
		ssess.Close()
	}
}

// BenchmarkAblationInterleavedHandshake compares mbTLS's interleaved
// session setup against the naïve Figure 1 approach (establish the
// end-to-end TLS session first, then a separate sequential TLS session
// to pass keys to the middlebox) over a realistic-latency path —
// quantifying the round trips the optimistic ClientHello reuse saves
// (DESIGN.md ablation 3).
func BenchmarkAblationInterleavedHandshake(b *testing.B) {
	pki := newBenchPKI(b)
	const latency = 5 * time.Millisecond // one-way per hop

	b.Run("mbTLS_interleaved", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			c0a, c0b := netsim.NewLink(netsim.LinkConfig{Latency: latency})
			c1a, c1b := netsim.NewLink(netsim.LinkConfig{Latency: latency})
			mb, err := mbtls.NewMiddlebox(mbtls.MiddleboxConfig{Mode: mbtls.ClientSide, Certificate: pki.mbCert})
			if err != nil {
				b.Fatal(err)
			}
			go mb.Handle(c0b, c1a) //nolint:errcheck
			sch := make(chan error, 1)
			var ssess *mbtls.Session
			go func() {
				var err error
				ssess, err = mbtls.Accept(c1b, &mbtls.ServerConfig{TLS: &mbtls.TLSConfig{Certificate: pki.serverCert}})
				sch <- err
			}()
			csess, err := mbtls.Dial(c0a, &mbtls.ClientConfig{
				TLS: &mbtls.TLSConfig{RootCAs: pki.ca.Pool(), ServerName: "server.example"},
			})
			if err != nil {
				b.Fatal(err)
			}
			<-sch
			csess.Close()
			ssess.Close()
		}
	})
	b.Run("naive_sequential", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			// End-to-end TLS over the full path (2 hops of latency)...
			c0a, c0b := netsim.NewLink(netsim.LinkConfig{Latency: 2 * latency})
			server := tls12.NewServerConn(c0b, &tls12.Config{Certificate: pki.serverCert})
			errc := make(chan error, 1)
			go func() { errc <- server.Handshake() }()
			client := tls12.NewClientConn(c0a, &tls12.Config{RootCAs: pki.ca.Pool(), ServerName: "server.example"})
			if err := client.Handshake(); err != nil {
				b.Fatal(err)
			}
			<-errc
			// ...then a separate, sequential TLS session to the
			// middlebox (1 hop of latency) to hand it the keys.
			m0a, m0b := netsim.NewLink(netsim.LinkConfig{Latency: latency})
			mbServer := tls12.NewServerConn(m0b, &tls12.Config{Certificate: pki.mbCert})
			go func() { errc <- mbServer.Handshake() }()
			mbClient := tls12.NewClientConn(m0a, &tls12.Config{RootCAs: pki.ca.Pool()})
			if err := mbClient.Handshake(); err != nil {
				b.Fatal(err)
			}
			<-errc
			if sk, err := client.ExportSessionKeys(); err != nil || sk == nil {
				b.Fatal(err)
			} else if _, err := mbClient.Write(sk.ClientWriteKey); err != nil {
				b.Fatal(err)
			}
			client.Close()
			server.Close()
			mbClient.Close()
			mbServer.Close()
		}
	})
}

// BenchmarkAblationBoundaryCost sweeps the simulated SGX transition
// cost to locate where Figure 7's "no noticeable impact" claim would
// break (DESIGN.md ablation 4).
func BenchmarkAblationBoundaryCost(b *testing.B) {
	authority, err := enclave.NewAuthority()
	if err != nil {
		b.Fatal(err)
	}
	for _, cost := range []time.Duration{0, time.Microsecond, 10 * time.Microsecond, 100 * time.Microsecond} {
		b.Run(cost.String(), func(b *testing.B) {
			platform, err := authority.NewPlatform()
			if err != nil {
				b.Fatal(err)
			}
			platform.SetBoundaryCost(cost)
			encl := platform.CreateEnclave(enclave.CodeImage{Name: "bench", Version: "1"})
			h, err := core.NewBenchHarness(encl, tls12.TLS_ECDHE_ECDSA_WITH_AES_256_GCM_SHA384, true)
			if err != nil {
				b.Fatal(err)
			}
			runDataPlaneBatch(b, h, 4096)
		})
	}
}

// BenchmarkAblationPerHopKeying measures the extra setup cost of
// unique per-hop keys (generation + distribution) relative to reusing
// the session key on every hop (DESIGN.md ablation 2).
func BenchmarkAblationPerHopKeying(b *testing.B) {
	for _, hops := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("hops=%d", hops), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				for h := 0; h < hops; h++ {
					if _, err := core.GenerateHopKeys(tls12.TLS_ECDHE_ECDSA_WITH_AES_256_GCM_SHA384); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
	}
}
