package mbtls_test

// API-level tests: everything here uses only the public mbtls facade
// (plus netsim for in-memory transport), the way a downstream user
// would.

import (
	"io"
	"net"
	"testing"
	"time"

	mbtls "repro"
	"repro/internal/netsim"
)

func TestPublicAPIFullSession(t *testing.T) {
	ca, err := mbtls.NewCA("api test root")
	if err != nil {
		t.Fatal(err)
	}
	serverCert, err := ca.Issue("origin.example", []string{"origin.example"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	proxyCert, err := ca.Issue("proxy.example", []string{"proxy.example"}, nil)
	if err != nil {
		t.Fatal(err)
	}

	authority, err := mbtls.NewAuthority()
	if err != nil {
		t.Fatal(err)
	}
	platform, err := authority.NewPlatform()
	if err != nil {
		t.Fatal(err)
	}
	image := mbtls.CodeImage{Name: "api-proxy", Version: "1.0"}
	encl := platform.CreateEnclave(image)

	proxy, err := mbtls.NewMiddlebox(mbtls.MiddleboxConfig{
		Mode:        mbtls.ClientSide,
		Certificate: proxyCert,
		Enclave:     encl,
	})
	if err != nil {
		t.Fatal(err)
	}

	clientEnd, proxyDown := netsim.Pipe()
	proxyUp, serverEnd := netsim.Pipe()
	go proxy.Handle(proxyDown, proxyUp) //nolint:errcheck

	serverReady := make(chan *mbtls.Session, 1)
	go func() {
		sess, err := mbtls.Accept(serverEnd, &mbtls.ServerConfig{
			TLS: &mbtls.TLSConfig{Certificate: serverCert},
		})
		if err != nil {
			t.Error(err)
			return
		}
		serverReady <- sess
	}()

	approved := 0
	sess, err := mbtls.Dial(clientEnd, &mbtls.ClientConfig{
		TLS:                         &mbtls.TLSConfig{RootCAs: ca.Pool(), ServerName: "origin.example"},
		MiddleboxTLS:                &mbtls.TLSConfig{RootCAs: ca.Pool()},
		RequireMiddleboxAttestation: true,
		MiddleboxVerifier: &mbtls.Verifier{
			Authority: authority.PublicKey(),
			Allowed:   []mbtls.Measurement{image.Measurement()},
		},
		Approve: func(mb mbtls.MiddleboxSummary) bool {
			approved++
			return mb.Attested
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	server := <-serverReady
	defer server.Close()

	if approved != 1 {
		t.Fatalf("approval callback ran %d times", approved)
	}
	mbs := sess.Middleboxes()
	if len(mbs) != 1 || !mbs[0].Attested || mbs[0].Measurement != image.Measurement() {
		t.Fatalf("middleboxes = %+v", mbs)
	}

	go sess.Write([]byte("public api ping")) //nolint:errcheck
	buf := make([]byte, 15)
	if _, err := io.ReadFull(server, buf); err != nil {
		t.Fatal(err)
	}
	if string(buf) != "public api ping" {
		t.Fatalf("got %q", buf)
	}
}

func TestPublicAPIOverTCP(t *testing.T) {
	ca, err := mbtls.NewCA("tcp test root")
	if err != nil {
		t.Fatal(err)
	}
	serverCert, err := ca.Issue("origin.example", []string{"origin.example"}, nil)
	if err != nil {
		t.Fatal(err)
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		sess, err := mbtls.Accept(conn, &mbtls.ServerConfig{
			TLS: &mbtls.TLSConfig{Certificate: serverCert},
		})
		if err != nil {
			t.Error(err)
			return
		}
		defer sess.Close()
		buf := make([]byte, 4)
		if _, err := io.ReadFull(sess, buf); err != nil {
			t.Error(err)
			return
		}
		sess.Write(buf) //nolint:errcheck
	}()

	sess, err := mbtls.DialAddr(ln.Addr().String(), &mbtls.ClientConfig{
		TLS: &mbtls.TLSConfig{RootCAs: ca.Pool(), ServerName: "origin.example"},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	if _, err := sess.Write([]byte("ping")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 4)
	sessDone := make(chan error, 1)
	go func() {
		_, err := io.ReadFull(sess, buf)
		sessDone <- err
	}()
	select {
	case err := <-sessDone:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("echo over TCP timed out")
	}
	if string(buf) != "ping" {
		t.Fatalf("got %q", buf)
	}
}

func TestDialAddrRefused(t *testing.T) {
	if _, err := mbtls.DialAddr("127.0.0.1:1", &mbtls.ClientConfig{TLS: &mbtls.TLSConfig{}}); err == nil {
		t.Fatal("dial to a closed port succeeded")
	}
}
