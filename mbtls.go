package mbtls

import (
	"net"
	"time"

	"repro/internal/certs"
	"repro/internal/core"
	"repro/internal/enclave"
	"repro/internal/hsfast"
	"repro/internal/sessionhost"
	"repro/internal/tls12"
	"repro/internal/transport"
	"repro/internal/transport/tcpx"
)

// Protocol types re-exported from the implementation packages. The
// facade keeps downstream code on one import while the internal
// packages stay independently testable.
type (
	// Session is an established mbTLS session endpoint (an
	// io.ReadWriteCloser carrying application data).
	Session = core.Session
	// ClientConfig configures Dial.
	ClientConfig = core.ClientConfig
	// ServerConfig configures Accept.
	ServerConfig = core.ServerConfig
	// Middlebox is an on-path mbTLS middlebox.
	Middlebox = core.Middlebox
	// MiddleboxConfig configures NewMiddlebox.
	MiddleboxConfig = core.MiddleboxConfig
	// MiddleboxStats are a middlebox's cumulative counters.
	MiddleboxStats = core.MiddleboxStats
	// MiddleboxSummary describes a session middlebox to the approving
	// endpoint.
	MiddleboxSummary = core.MiddleboxSummary
	// Processor transforms application data at a middlebox.
	Processor = core.Processor
	// ProcessorFunc adapts a function to Processor.
	ProcessorFunc = core.ProcessorFunc
	// Direction is a data-plane flow direction.
	Direction = core.Direction
	// Mode selects client-side or server-side middlebox behavior.
	Mode = core.Mode
	// Accountability selects how endpoints hold middleboxes to account:
	// enclave attestation (the default) or mdTLS-style proxy signatures.
	Accountability = core.Accountability
	// AccountabilityError is a proxysig audit failure at session close.
	AccountabilityError = core.AccountabilityError
	// OverloadError is a session host's typed at-capacity rejection.
	OverloadError = core.OverloadError
	// DrainingError is a session host's typed shutting-down rejection.
	DrainingError = core.DrainingError

	// SessionHost is the shared per-connection lifecycle runtime:
	// bounded accept loop, session registry, graceful drain,
	// backpressure, and stats aggregation.
	SessionHost = sessionhost.Host
	// SessionHostConfig configures NewSessionHost.
	SessionHostConfig = sessionhost.Config
	// SessionHostMetrics snapshots a SessionHost.
	SessionHostMetrics = sessionhost.Metrics
	// SessionHandler runs one admitted connection.
	SessionHandler = sessionhost.Handler
	// SessionControl is a handler's interface back to the runtime.
	SessionControl = sessionhost.Control

	// RecordBufPool is a bounded record-buffer pool, shared between a
	// SessionHost and the middlebox it fronts.
	RecordBufPool = tls12.RecordBufPool

	// RelayPool is the host-scoped crypto worker pool behind the
	// order-preserving parallel relay pipeline; RelayPoolStats is its
	// metrics snapshot (utilization, pipeline depth, stalls, reseal
	// latency quantiles).
	RelayPool      = core.RelayPool
	RelayPoolStats = core.RelayPoolStats

	// TLSConfig configures the underlying TLS 1.2 engine.
	TLSConfig = tls12.Config
	// Certificate is an Ed25519 certificate chain with its key.
	Certificate = tls12.Certificate
	// SessionTicket is client-side resumption state.
	SessionTicket = tls12.SessionTicket

	// ChainTicket is a whole session chain's resumption state: the
	// primary ticket plus one hop ticket per client-side middlebox.
	ChainTicket = core.ChainTicket
	// ChainHop is one middlebox's entry in a ChainTicket.
	ChainHop = core.ChainHop

	// Handshake fast-path resources (host-scoped; see internal/hsfast).
	// KeySharePool precomputes X25519 keyshares on idle workers; STEK
	// is a rotating session-ticket encryption key with a one-generation
	// grace window; VerifyCache memoizes certificate-chain and
	// quote-endorsement verification verdicts.
	KeySharePool = hsfast.KeySharePool
	STEK         = hsfast.STEK
	VerifyCache  = hsfast.VerifyCache

	// Transport abstracts how bytes move between nodes (netsim pipes
	// or real TCP sockets); see internal/transport for the Conn
	// contract both backends satisfy.
	Transport = transport.Transport
	// TCPTransport is the real-socket backend with batched syscall I/O
	// (pooled read buffers, vectored writes, NODELAY management,
	// optional SO_REUSEPORT per-shard listeners).
	TCPTransport = tcpx.Transport
	// TCPTransportConfig configures NewTCPTransport.
	TCPTransportConfig = tcpx.Config

	// CA is an in-process certificate authority for provisioning
	// servers and middleboxes.
	CA = certs.CA

	// Attestation trust chain (simulated SGX).
	Authority   = enclave.Authority
	Platform    = enclave.Platform
	Enclave     = enclave.Enclave
	CodeImage   = enclave.CodeImage
	Measurement = enclave.Measurement
	Quote       = enclave.Quote
	Verifier    = enclave.Verifier
)

// Middlebox modes.
const (
	ClientSide = core.ClientSide
	ServerSide = core.ServerSide
)

// Accountability modes.
const (
	AccountAttest   = core.AccountAttest
	AccountProxySig = core.AccountProxySig
)

// ParseAccountability parses an accountability mode name ("attest" or
// "proxysig"), as accepted by the daemons' -accountability flag.
func ParseAccountability(s string) (Accountability, error) {
	return core.ParseAccountability(s)
}

// Data-plane directions.
const (
	DirClientToServer = core.DirClientToServer
	DirServerToClient = core.DirServerToClient
)

// Supported cipher suites.
const (
	TLS_ECDHE_ECDSA_WITH_AES_128_GCM_SHA256 = tls12.TLS_ECDHE_ECDSA_WITH_AES_128_GCM_SHA256
	TLS_ECDHE_ECDSA_WITH_AES_256_GCM_SHA384 = tls12.TLS_ECDHE_ECDSA_WITH_AES_256_GCM_SHA384
)

// Dial establishes an mbTLS session as the client over transport,
// discovering on-path middleboxes during the handshake (no round trips
// added).
func Dial(transport net.Conn, cfg *ClientConfig) (*Session, error) {
	return core.Dial(transport, cfg)
}

// DialAddr connects to addr over the real-socket TCP transport and
// establishes an mbTLS session.
func DialAddr(addr string, cfg *ClientConfig) (*Session, error) {
	conn, err := tcpx.Default().Dial(addr)
	if err != nil {
		return nil, err
	}
	sess, err := core.Dial(conn, cfg)
	if err != nil {
		conn.Close()
		return nil, err
	}
	return sess, nil
}

// Accept establishes an mbTLS session as the server over an accepted
// transport connection.
func Accept(transport net.Conn, cfg *ServerConfig) (*Session, error) {
	return core.Accept(transport, cfg)
}

// NewMiddlebox builds an mbTLS middlebox.
func NewMiddlebox(cfg MiddleboxConfig) (*Middlebox, error) {
	return core.NewMiddlebox(cfg)
}

// NewSessionHost builds a session-host runtime. Every accept loop in
// the repo — the proxy and server binaries, the bench harness, the
// concurrent-session tests — admits connections through one of these.
func NewSessionHost(cfg SessionHostConfig) (*SessionHost, error) {
	return sessionhost.New(cfg)
}

// NewRecordBufPool builds a bounded record-buffer pool retaining at
// most maxRetained buffers.
func NewRecordBufPool(maxRetained int) *RecordBufPool {
	return tls12.NewRecordBufPool(maxRetained)
}

// NewRelayPool starts a relay crypto worker pool; workers <= 0 derives
// the count from GOMAXPROCS. Close it only after the sessions using it
// have drained (a SessionHost with Config.RelayWorkers set does this
// itself).
func NewRelayPool(workers int) *RelayPool {
	return core.NewRelayPool(workers)
}

// ConfigureRelayWorkers sets the worker count the process-wide shared
// relay pool is created with (0 = GOMAXPROCS-derived). It must run
// before the first middlebox session relays data; it has no effect
// once the shared pool exists.
func ConfigureRelayWorkers(workers int) {
	core.ConfigureSharedRelayPool(workers)
}

// NewKeySharePool builds a host-scoped X25519 precompute pool holding
// up to size keyshares, refilled by workers background goroutines
// (0 defaults both). Close it when the host shuts down.
func NewKeySharePool(size, workers int) *KeySharePool {
	return hsfast.NewKeySharePool(size, workers)
}

// NewKeySharePoolForShards sizes a keyshare pool from a session host's
// shard count: one refill worker and a fixed slab of capacity per
// shard, so precompute throughput scales with the host.
func NewKeySharePoolForShards(shards int) *KeySharePool {
	return hsfast.NewKeySharePoolForShards(shards)
}

// NewSTEK builds a rotating session-ticket encryption key. A zero
// interval disables time-based rotation (rotate manually); otherwise
// each interval retires the previous generation after one interval of
// grace, so outstanding tickets survive exactly one rotation.
func NewSTEK(interval time.Duration) (*STEK, error) {
	return hsfast.NewSTEK(interval, nil)
}

// NewVerifyCache builds a verification cache holding up to max
// verdicts for ttl. Plug it into TLSConfig.VerifyCache (certificate
// chains) or Verifier.Cache (quote endorsements).
func NewVerifyCache(max int, ttl time.Duration) *VerifyCache {
	return hsfast.NewVerifyCache(max, ttl, nil)
}

// NewMiddleboxHandler adapts a Middlebox to a SessionHost handler:
// each admitted connection is relayed toward the next hop from dial.
func NewMiddleboxHandler(mb *Middlebox, dial func() (net.Conn, error)) SessionHandler {
	return sessionhost.NewMiddleboxHandler(mb, dial)
}

// NewServerHandler adapts an mbTLS server to a SessionHost handler:
// each admitted connection is accepted and handed to serve.
func NewServerHandler(cfg *ServerConfig, serve func(*Session) error) SessionHandler {
	return sessionhost.NewServerHandler(cfg, serve)
}

// NewTCPTransport builds the real-socket TCP transport. Daemons use it
// for listeners and next-hop dials; pair Config.ReusePort with
// SessionHost.ServeListeners and ListenShards for per-shard accept
// loops.
func NewTCPTransport(cfg TCPTransportConfig) *TCPTransport {
	return tcpx.New(cfg)
}

// NewCA creates a self-signed certificate authority, typically one per
// deployment domain (origin PKI, middlebox-service-provider PKI).
func NewCA(commonName string) (*CA, error) {
	return certs.NewCA(commonName)
}

// NewAuthority creates an attestation authority (plays Intel's role in
// the SGX trust chain).
func NewAuthority() (*Authority, error) {
	return enclave.NewAuthority()
}
