// Command mbtls-bench regenerates every table and figure of the
// paper's evaluation (§5):
//
//	mbtls-bench table1            Table 1: threats and defenses (live attacks)
//	mbtls-bench table2            Table 2: handshake viability across 241 networks
//	mbtls-bench fig5              Figure 5: handshake CPU microbenchmarks
//	mbtls-bench fig6              Figure 6: mbTLS vs TLS session latency
//	mbtls-bench fig7              Figure 7: SGX (non-)overhead on throughput
//	mbtls-bench legacy            §5.1: legacy interoperability breakdown
//	mbtls-bench design            §2: the design-space matrix, with live probes
//	mbtls-bench sessions          session-host throughput/latency concurrency sweep
//	mbtls-bench handshake         handshake fast path: full vs chain-ticket-resumed
//	mbtls-bench transport         simulated (netsim) vs real (loopback TCP) comparison
//	mbtls-bench all               everything above
//
// The sessions and fig7 sweeps take -transport {netsim|tcp} to run the
// identical topology over in-memory pipes or loopback kernel sockets.
//
// Absolute numbers depend on this machine; the shapes (who wins, by
// roughly what factor) are what reproduce the paper. See EXPERIMENTS.md.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"repro/internal/experiments"
)

func main() {
	trials := flag.Int("trials", 0, "trials per configuration (0 = per-experiment default)")
	scale := flag.Float64("scale", 0.1, "latency scale for fig6 (1.0 = real inter-DC latencies)")
	window := flag.Duration("window", 250*time.Millisecond, "measurement window per fig7 cell")
	boundary := flag.Duration("boundary-cost", time.Microsecond, "simulated SGX transition cost for fig7")
	jsonOut := flag.Bool("json", false, "for fig7/sessions: also write BENCH_fig7.json / BENCH_sessions.json")
	perWorker := flag.Int("sessions-per-worker", 0, "sessions each worker runs per concurrency level (0 = default)")
	quick := flag.Bool("quick", false, "for handshake/sessions/fig7: shrink to a smoke-test run (CI gate)")
	shards := flag.Int("shards", 0, "for sessions: session-host shard count (0 = GOMAXPROCS)")
	transportName := flag.String("transport", "", "for sessions/fig7: byte-moving backend, netsim (default) or tcp")
	soak := flag.Bool("soak", false, "for sessions: also run the idle-session soak")
	soakSessions := flag.Int("soak-sessions", 0, "for sessions -soak: live idle sessions to hold (0 = 20000)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile covering the run to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile at the end of the run to this file")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: mbtls-bench [flags] {design|table1|table2|fig5|fig6|fig7|legacy|sessions|handshake|transport|all}\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	cmd := flag.Arg(0)
	if cmd == "" {
		flag.Usage()
		os.Exit(2)
	}
	// Accept flags after the subcommand too (mbtls-bench fig7 -json).
	if flag.NArg() > 1 {
		if err := flag.CommandLine.Parse(flag.Args()[1:]); err != nil {
			os.Exit(2)
		}
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		exitOn(err)
		exitOn(pprof.StartCPUProfile(f))
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			exitOn(err)
			defer f.Close()
			runtime.GC()
			exitOn(pprof.WriteHeapProfile(f))
		}()
	}

	run := func(name string) {
		start := time.Now()
		switch name {
		case "table1":
			fmt.Print(experiments.FormatTable1(experiments.RunTable1()))
		case "table2":
			rows, err := experiments.RunTable2(experiments.Table2Options{})
			exitOn(err)
			fmt.Print(experiments.FormatTable2(rows))
		case "fig5":
			rows, err := experiments.RunFig5(experiments.Fig5Options{Trials: *trials})
			exitOn(err)
			fmt.Print(experiments.FormatFig5(rows))
		case "fig6":
			rows, err := experiments.RunFig6(experiments.Fig6Options{Trials: *trials, Scale: *scale})
			exitOn(err)
			fmt.Print(experiments.FormatFig6(rows))
		case "fig7":
			fig7Window := *window
			if *quick {
				// Let Quick pick its own short window unless one was
				// given explicitly.
				fig7Window = 0
				flag.Visit(func(f *flag.Flag) {
					if f.Name == "window" {
						fig7Window = *window
					}
				})
			}
			cells, err := experiments.RunFig7(experiments.Fig7Options{Window: fig7Window, BoundaryCost: *boundary, Transport: *transportName, Quick: *quick})
			exitOn(err)
			fmt.Print(experiments.FormatFig7(cells))
			if *jsonOut {
				exitOn(experiments.AnnotateFig7Allocs(cells, *boundary))
				exitOn(experiments.WriteFig7JSON("BENCH_fig7.json", cells))
				fmt.Println("wrote BENCH_fig7.json")
			}
		case "legacy":
			r, err := experiments.RunLegacy(experiments.LegacyOptions{})
			exitOn(err)
			fmt.Print(experiments.FormatLegacy(r))
		case "design":
			fmt.Print(experiments.FormatDesignSpace(experiments.DesignSpace()))
		case "sessions":
			rep, err := experiments.RunSessions(experiments.SessionsOptions{
				SessionsPerWorker: *perWorker,
				Shards:            *shards,
				Transport:         *transportName,
				Quick:             *quick,
			})
			exitOn(err)
			if *soak {
				rep.Soak, err = experiments.RunSoak(experiments.SoakOptions{
					Sessions: *soakSessions,
					Shards:   *shards,
				})
				exitOn(err)
			}
			fmt.Print(experiments.FormatSessions(rep))
			if *jsonOut {
				exitOn(experiments.WriteSessionsJSON("BENCH_sessions.json", rep))
				fmt.Println("wrote BENCH_sessions.json")
			}
		case "transport":
			rep, err := experiments.RunTransportCompare(*quick)
			exitOn(err)
			fmt.Print(experiments.FormatTransport(rep))
			if *jsonOut {
				exitOn(experiments.WriteTransportJSON("BENCH_transport.json", rep))
				fmt.Println("wrote BENCH_transport.json")
			}
		case "handshake":
			rows, err := experiments.RunHandshake(experiments.HandshakeOptions{
				SessionsPerWorker: *perWorker,
				Quick:             *quick,
			})
			exitOn(err)
			fmt.Print(experiments.FormatHandshake(rows))
			if *jsonOut {
				exitOn(experiments.WriteHandshakeJSON("BENCH_handshake.json", rows))
				fmt.Println("wrote BENCH_handshake.json")
			}
		default:
			fmt.Fprintf(os.Stderr, "mbtls-bench: unknown experiment %q\n", name)
			flag.Usage()
			os.Exit(2)
		}
		fmt.Printf("[%s completed in %v]\n\n", name, time.Since(start).Round(time.Millisecond))
	}

	if cmd == "all" {
		for _, name := range []string{"design", "table1", "table2", "fig5", "fig6", "fig7", "legacy", "sessions", "handshake", "transport"} {
			run(name)
		}
		return
	}
	run(cmd)
}

func exitOn(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "mbtls-bench:", err)
		os.Exit(1)
	}
}
