// Command mbtls-server runs an HTTP-over-mbTLS origin server. On first
// start it provisions a PKI under -pki (root CA, server certificate,
// middlebox-provider certificate) that the companion mbtls-proxy and
// mbtls-client commands load.
//
// Example session (three shells):
//
//	mbtls-server -listen :8443 -pki ./pki
//	mbtls-proxy  -listen :8444 -next localhost:8443 -pki ./pki
//	mbtls-client -connect localhost:8444 -pki ./pki /index.html
package main

import (
	"crypto/x509"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"path/filepath"

	mbtls "repro"
	"repro/internal/certs"
	"repro/internal/httpx"
)

func main() {
	listen := flag.String("listen", ":8443", "address to listen on")
	pkiDir := flag.String("pki", "./pki", "PKI directory (created if missing)")
	serverName := flag.String("name", "origin.example", "server certificate name")
	acceptMboxes := flag.Bool("accept-middleboxes", true, "accept server-side middlebox announcements")
	flag.Parse()

	pool, serverCert, err := loadOrCreatePKI(*pkiDir, *serverName)
	if err != nil {
		log.Fatalf("mbtls-server: pki: %v", err)
	}

	cfg := &mbtls.ServerConfig{
		TLS:               &mbtls.TLSConfig{Certificate: serverCert},
		AcceptMiddleboxes: *acceptMboxes,
		MiddleboxTLS:      &mbtls.TLSConfig{RootCAs: pool},
	}

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		log.Fatalf("mbtls-server: %v", err)
	}
	log.Printf("mbtls-server: serving https(mbTLS)://%s on %s (pki: %s)", *serverName, *listen, *pkiDir)

	for {
		conn, err := ln.Accept()
		if err != nil {
			log.Fatalf("mbtls-server: accept: %v", err)
		}
		go handle(conn, cfg, *serverName)
	}
}

func handle(conn net.Conn, cfg *mbtls.ServerConfig, serverName string) {
	sess, err := mbtls.Accept(conn, cfg)
	if err != nil {
		log.Printf("mbtls-server: handshake from %s: %v", conn.RemoteAddr(), err)
		return
	}
	defer sess.Close()
	for _, mb := range sess.Middleboxes() {
		log.Printf("mbtls-server: session includes middlebox %q (attested=%v)", mb.Name, mb.Attested)
	}
	err = httpx.Serve(sess, func(req *httpx.Request) *httpx.Response {
		log.Printf("mbtls-server: %s %s (Via: %q)", req.Method, req.Path, req.Header.Get("Via"))
		body := fmt.Sprintf("hello from %s — you asked for %s\nVia header seen: %q\n",
			serverName, req.Path, req.Header.Get("Via"))
		return &httpx.Response{
			StatusCode: 200,
			Header:     httpx.Header{"Content-Type": "text/plain"},
			Body:       []byte(body),
		}
	})
	if err != nil {
		log.Printf("mbtls-server: session from %s: %v", conn.RemoteAddr(), err)
	}
}

// loadOrCreatePKI provisions (or loads) root.pem, server.pem/.key, and
// proxy.pem/.key under dir.
func loadOrCreatePKI(dir, serverName string) (*x509.CertPool, *mbtls.Certificate, error) {
	rootPath := filepath.Join(dir, "root.pem")
	if _, err := os.Stat(rootPath); os.IsNotExist(err) {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, nil, err
		}
		ca, err := certs.NewCA("mbtls demo root")
		if err != nil {
			return nil, nil, err
		}
		if err := ca.SaveRootPEM(rootPath); err != nil {
			return nil, nil, err
		}
		serverCert, err := ca.Issue(serverName, []string{serverName}, nil)
		if err != nil {
			return nil, nil, err
		}
		if err := certs.SaveCertPEM(serverCert, filepath.Join(dir, "server.pem"), filepath.Join(dir, "server.key")); err != nil {
			return nil, nil, err
		}
		proxyCert, err := ca.Issue("proxy.example", []string{"proxy.example"}, nil)
		if err != nil {
			return nil, nil, err
		}
		if err := certs.SaveCertPEM(proxyCert, filepath.Join(dir, "proxy.pem"), filepath.Join(dir, "proxy.key")); err != nil {
			return nil, nil, err
		}
		log.Printf("mbtls-server: provisioned new PKI in %s", dir)
	}
	pool, err := certs.LoadPoolPEM(rootPath)
	if err != nil {
		return nil, nil, err
	}
	serverCert, err := certs.LoadCertPEM(filepath.Join(dir, "server.pem"), filepath.Join(dir, "server.key"))
	if err != nil {
		return nil, nil, err
	}
	return pool, serverCert, nil
}
