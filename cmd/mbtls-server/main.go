// Command mbtls-server runs an HTTP-over-mbTLS origin server. On first
// start it provisions a PKI under -pki (root CA, server certificate,
// middlebox-provider certificate) that the companion mbtls-proxy and
// mbtls-client commands load.
//
// Example session (three shells):
//
//	mbtls-server -listen :8443 -pki ./pki
//	mbtls-proxy  -listen :8444 -next localhost:8443 -pki ./pki
//	mbtls-client -connect localhost:8444 -pki ./pki /index.html
package main

import (
	"context"
	"crypto/x509"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	mbtls "repro"
	"repro/internal/certs"
	"repro/internal/httpx"
)

func main() {
	listen := flag.String("listen", ":8443", "address to listen on")
	pkiDir := flag.String("pki", "./pki", "PKI directory (created if missing)")
	serverName := flag.String("name", "origin.example", "server certificate name")
	acceptMboxes := flag.Bool("accept-middleboxes", true, "accept server-side middlebox announcements")
	accountability := flag.String("accountability", "attest", "accountability mode: attest or proxysig")
	statsEvery := flag.Duration("stats", 0, "log cumulative session/fault counters at this interval (0 disables)")
	maxSessions := flag.Int("max-sessions", 0, "max concurrent sessions (0 = default)")
	shards := flag.Int("shards", 0, "session-host shards (0 = one per core)")
	reusePort := flag.Bool("reuseport", false, "bind one SO_REUSEPORT listener per shard (Linux)")
	drain := flag.Duration("drain", 10*time.Second, "graceful-drain deadline on SIGINT/SIGTERM")
	relayWorkers := flag.Int("relay-workers", 0, "crypto workers for the process-wide relay pool (0 = one per core)")
	flag.Parse()

	// Endpoints don't relay, but embedded middlebox code paths share
	// the process-wide pool; size it before anything can create it.
	mbtls.ConfigureRelayWorkers(*relayWorkers)

	acct, err := mbtls.ParseAccountability(*accountability)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mbtls-server: invalid -accountability %q (accepted values: attest, proxysig)\n", *accountability)
		os.Exit(2)
	}

	pool, serverCert, err := loadOrCreatePKI(*pkiDir, *serverName)
	if err != nil {
		log.Fatalf("mbtls-server: pki: %v", err)
	}

	cfg := &mbtls.ServerConfig{
		TLS:               &mbtls.TLSConfig{Certificate: serverCert},
		AcceptMiddleboxes: *acceptMboxes,
		MiddleboxTLS:      &mbtls.TLSConfig{RootCAs: pool},
		Accountability:    acct,
	}

	host, err := mbtls.NewSessionHost(mbtls.SessionHostConfig{
		Name:         "mbtls-server",
		MaxSessions:  *maxSessions,
		Shards:       *shards,
		DrainTimeout: *drain,
		Handler:      mbtls.NewServerHandler(cfg, serveSession(*serverName)),
	})
	if err != nil {
		log.Fatalf("mbtls-server: %v", err)
	}

	// Listen through the batched-I/O TCP transport; with -reuseport the
	// host gets one kernel-spread accept loop per shard.
	tr := mbtls.NewTCPTransport(mbtls.TCPTransportConfig{ReusePort: *reusePort})
	lns, err := tr.ListenShards(*listen, host.Shards())
	if err != nil {
		log.Fatalf("mbtls-server: %v", err)
	}
	log.Printf("mbtls-server: serving https(mbTLS)://%s on %s (pki: %s, accountability=%s, shards=%d, listeners=%d)",
		*serverName, *listen, *pkiDir, acct, host.Shards(), len(lns))

	if *statsEvery > 0 {
		go func() {
			for range time.Tick(*statsEvery) {
				m := host.Metrics()
				log.Printf("mbtls-server: stats active=%d handshaking=%d accepted=%d completed=%d failed=%d "+
					"overloaded=%d relayed=%d faults=%d",
					m.ActiveSessions, m.HandshakesInFlight, m.Accepted, m.Completed, m.Failed,
					m.Overloaded, m.Sessions.RecordsRelayed, m.Sessions.FaultsObserved)
			}
		}()
	}

	// Shutdown closes the listener, which makes Serve return nil; main
	// then waits for the drain goroutine's final log line before
	// exiting.
	drained := make(chan struct{})
	go func() {
		defer close(drained)
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		<-sig
		log.Printf("mbtls-server: draining (deadline %v)", *drain)
		ctx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		err := host.Shutdown(ctx)
		m := host.Metrics()
		log.Printf("mbtls-server: drained in %v (forced %d): %v", m.DrainTime, m.ForceClosed, err)
	}()

	if err := host.ServeListeners(lns); err != nil {
		log.Fatalf("mbtls-server: %v", err)
	}
	<-drained
}

// serveSession returns the per-session application loop: HTTP over an
// established mbTLS session.
func serveSession(serverName string) func(*mbtls.Session) error {
	return func(sess *mbtls.Session) error {
		for _, mb := range sess.Middleboxes() {
			log.Printf("mbtls-server: session includes middlebox %q (attested=%v)", mb.Name, mb.Attested)
		}
		return httpx.Serve(sess, func(req *httpx.Request) *httpx.Response {
			log.Printf("mbtls-server: %s %s (Via: %q)", req.Method, req.Path, req.Header.Get("Via"))
			body := fmt.Sprintf("hello from %s — you asked for %s\nVia header seen: %q\n",
				serverName, req.Path, req.Header.Get("Via"))
			return &httpx.Response{
				StatusCode: 200,
				Header:     httpx.Header{"Content-Type": "text/plain"},
				Body:       []byte(body),
			}
		})
	}
}

// loadOrCreatePKI provisions (or loads) root.pem, server.pem/.key, and
// proxy.pem/.key under dir.
func loadOrCreatePKI(dir, serverName string) (*x509.CertPool, *mbtls.Certificate, error) {
	rootPath := filepath.Join(dir, "root.pem")
	if _, err := os.Stat(rootPath); os.IsNotExist(err) {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, nil, err
		}
		ca, err := certs.NewCA("mbtls demo root")
		if err != nil {
			return nil, nil, err
		}
		if err := ca.SaveRootPEM(rootPath); err != nil {
			return nil, nil, err
		}
		serverCert, err := ca.Issue(serverName, []string{serverName}, nil)
		if err != nil {
			return nil, nil, err
		}
		if err := certs.SaveCertPEM(serverCert, filepath.Join(dir, "server.pem"), filepath.Join(dir, "server.key")); err != nil {
			return nil, nil, err
		}
		proxyCert, err := ca.Issue("proxy.example", []string{"proxy.example"}, nil)
		if err != nil {
			return nil, nil, err
		}
		if err := certs.SaveCertPEM(proxyCert, filepath.Join(dir, "proxy.pem"), filepath.Join(dir, "proxy.key")); err != nil {
			return nil, nil, err
		}
		log.Printf("mbtls-server: provisioned new PKI in %s", dir)
	}
	pool, err := certs.LoadPoolPEM(rootPath)
	if err != nil {
		return nil, nil, err
	}
	serverCert, err := certs.LoadCertPEM(filepath.Join(dir, "server.pem"), filepath.Join(dir, "server.key"))
	if err != nil {
		return nil, nil, err
	}
	return pool, serverCert, nil
}
