// Command mbtls-lint runs the protocol-invariant analyzer suite
// (internal/analysis) over the module and exits non-zero on findings.
// It is part of the tier-1 verify recipe: the invariants the paper's
// security argument rests on — constant-time key comparison, key
// zeroization, pooled-buffer ownership, the enclave boundary,
// crypto-grade randomness, secret-taint containment, atomic-access
// discipline, deadlock-free lock ordering, and classifiable boundary
// errors — are machine-checked on every change.
//
// Usage:
//
//	mbtls-lint [-checks name,name] [-json] [./...]
//
// With -json each finding is one JSON object per line (see DESIGN.md
// §8 for the schema), for editors and CI annotators; the human
// file:line:col form is the default.
//
// Exit status: 0 clean, 1 findings, 2 load or usage errors.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/analysis"
)

// jsonDiagnostic is the -json wire form of one finding, one object per
// line. Field names are part of the tool's interface; see DESIGN.md §8.
type jsonDiagnostic struct {
	Check   string `json:"check"`
	File    string `json:"file"`
	Line    int    `json:"line"`
	Column  int    `json:"column"`
	Message string `json:"message"`
	// Via is the interprocedural provenance of the finding (the call
	// chain a flow traversed), omitted for purely local findings.
	Via string `json:"via,omitempty"`
}

func main() {
	checks := flag.String("checks", "", "comma-separated analyzer names to run (default: all)")
	jsonOut := flag.Bool("json", false, "emit one JSON object per finding instead of file:line:col lines")
	ignoreBudget := flag.Int("ignore-budget", analysis.DefaultIgnoreBudget,
		"max //lint:ignore suppressions allowed module-wide (-1 disables the check)")
	list := flag.Bool("list", false, "list available analyzers and exit")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: mbtls-lint [-checks name,name] [./...]\n\nAnalyzers:\n")
		for _, a := range analysis.Analyzers() {
			fmt.Fprintf(flag.CommandLine.Output(), "  %-16s %s\n", a.Name, a.Doc)
		}
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, a := range analysis.Analyzers() {
			fmt.Printf("%-16s %s\n", a.Name, a.Doc)
		}
		return
	}

	analyzers, err := selectAnalyzers(*checks)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mbtls-lint:", err)
		os.Exit(2)
	}

	root, err := moduleRoot()
	if err != nil {
		fmt.Fprintln(os.Stderr, "mbtls-lint:", err)
		os.Exit(2)
	}

	// Arguments are package patterns; everything resolves within the
	// module, so "./..." (the only pattern the recipe uses) and no
	// arguments both mean the whole module. A directory argument
	// restricts the report to findings under it.
	filters, err := pathFilters(root, flag.Args())
	if err != nil {
		fmt.Fprintln(os.Stderr, "mbtls-lint:", err)
		os.Exit(2)
	}

	pkgs, broken, err := analysis.Load(root)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mbtls-lint: load:", err)
		os.Exit(2)
	}
	// A package that fails to parse or type-check cannot be analyzed
	// honestly: report each one on a line of its own, still analyze the
	// rest of the module, and exit 2 so the run never pretends it
	// covered the broken packages.
	for _, pe := range broken {
		fmt.Fprintf(os.Stderr, "mbtls-lint: load: %v\n", pe)
	}

	// The suppression budget is module-wide by construction, so it runs
	// regardless of which -checks are selected.
	diags := analysis.Run(pkgs, analyzers)
	diags = append(diags, analysis.IgnoreBudget(pkgs, *ignoreBudget)...)
	// Run's output is sorted, but the budget findings merged after it
	// are a separate source: re-sort so emission order (text and -json
	// alike) is deterministic, whatever produced each finding.
	analysis.SortDiagnostics(diags)

	findings := 0
	for _, d := range diags {
		if !filters.match(d.Pos.Filename) {
			continue
		}
		rel, err := filepath.Rel(root, d.Pos.Filename)
		if err == nil {
			d.Pos.Filename = rel
		}
		if *jsonOut {
			line, err := json.Marshal(jsonDiagnostic{
				Check:   d.Check,
				File:    d.Pos.Filename,
				Line:    d.Pos.Line,
				Column:  d.Pos.Column,
				Message: d.Message,
				Via:     d.Via,
			})
			if err != nil {
				fmt.Fprintln(os.Stderr, "mbtls-lint:", err)
				os.Exit(2)
			}
			fmt.Println(string(line))
		} else {
			fmt.Println(d)
		}
		findings++
	}
	if findings > 0 {
		fmt.Fprintf(os.Stderr, "mbtls-lint: %d finding(s)\n", findings)
	}
	switch {
	case len(broken) > 0:
		fmt.Fprintf(os.Stderr, "mbtls-lint: %d package(s) failed to load and were not analyzed\n", len(broken))
		os.Exit(2)
	case findings > 0:
		os.Exit(1)
	}
}

// selectAnalyzers resolves the -checks flag.
func selectAnalyzers(names string) ([]*analysis.Analyzer, error) {
	all := analysis.Analyzers()
	if names == "" {
		return all, nil
	}
	byName := make(map[string]*analysis.Analyzer, len(all))
	for _, a := range all {
		byName[a.Name] = a
	}
	var out []*analysis.Analyzer
	for _, name := range strings.Split(names, ",") {
		a, ok := byName[strings.TrimSpace(name)]
		if !ok {
			return nil, fmt.Errorf("unknown analyzer %q", name)
		}
		out = append(out, a)
	}
	return out, nil
}

// moduleRoot walks up from the working directory to the enclosing
// go.mod.
func moduleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod above %s", dir)
		}
		dir = parent
	}
}

// pathFilter restricts output to files under the requested directories.
type pathFilter struct{ prefixes []string }

func pathFilters(root string, args []string) (*pathFilter, error) {
	f := &pathFilter{}
	for _, arg := range args {
		if arg == "./..." || arg == "..." {
			return &pathFilter{}, nil // whole module
		}
		recursive := false
		if rest, ok := strings.CutSuffix(arg, "/..."); ok {
			recursive = true
			arg = rest
		}
		abs, err := filepath.Abs(arg)
		if err != nil {
			return nil, err
		}
		if _, err := os.Stat(abs); err != nil {
			return nil, fmt.Errorf("package pattern %q: %w", arg, err)
		}
		_ = recursive // a directory prefix covers both forms
		f.prefixes = append(f.prefixes, abs+string(filepath.Separator))
	}
	return f, nil
}

func (f *pathFilter) match(file string) bool {
	if len(f.prefixes) == 0 {
		return true
	}
	for _, p := range f.prefixes {
		if strings.HasPrefix(file, p) {
			return true
		}
	}
	return false
}
