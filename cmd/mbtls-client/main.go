// Command mbtls-client fetches a path over mbTLS, approving any
// middleboxes discovered on the way — the curl-equivalent from the
// paper's legacy-interoperability experiment (§5.1).
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"

	mbtls "repro"
	"repro/internal/certs"
	"repro/internal/httpx"
)

func main() {
	connect := flag.String("connect", "localhost:8444", "address to connect to (server or first middlebox)")
	pkiDir := flag.String("pki", "./pki", "PKI directory (provisioned by mbtls-server)")
	serverName := flag.String("name", "origin.example", "expected server name")
	accountability := flag.String("accountability", "attest", "accountability mode: attest or proxysig")
	relayWorkers := flag.Int("relay-workers", 0, "crypto workers for the process-wide relay pool (0 = one per core)")
	flag.Parse()
	mbtls.ConfigureRelayWorkers(*relayWorkers)
	path := flag.Arg(0)
	if path == "" {
		path = "/"
	}

	acct, err := mbtls.ParseAccountability(*accountability)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mbtls-client: invalid -accountability %q (accepted values: attest, proxysig)\n", *accountability)
		os.Exit(2)
	}

	pool, err := certs.LoadPoolPEM(filepath.Join(*pkiDir, "root.pem"))
	if err != nil {
		log.Fatalf("mbtls-client: load roots (run mbtls-server once to provision): %v", err)
	}

	sess, err := mbtls.DialAddr(*connect, &mbtls.ClientConfig{
		TLS:            &mbtls.TLSConfig{RootCAs: pool, ServerName: *serverName},
		MiddleboxTLS:   &mbtls.TLSConfig{RootCAs: pool},
		Accountability: acct,
		Approve: func(mb mbtls.MiddleboxSummary) bool {
			log.Printf("mbtls-client: approving middlebox %q (attested=%v)", mb.Name, mb.Attested)
			return true
		},
	})
	if err != nil {
		log.Fatalf("mbtls-client: %v", err)
	}
	defer sess.Close()

	for _, mb := range sess.Middleboxes() {
		log.Printf("mbtls-client: session middlebox %q on subchannel %d", mb.Name, mb.Subchannel)
	}

	resp, err := httpx.Do(sess, &httpx.Request{
		Method: "GET",
		Path:   path,
		Host:   *serverName,
		Header: httpx.Header{},
	})
	if err != nil {
		log.Fatalf("mbtls-client: fetch: %v", err)
	}
	fmt.Fprintf(os.Stderr, "HTTP/1.1 %d %s\n", resp.StatusCode, resp.Reason)
	os.Stdout.Write(resp.Body)
}
