// Command mbtls-proxy runs the paper's prototype middlebox: an mbTLS
// HTTP proxy that performs HTTP header insertion (§5, "Prototype
// Implementation"). It relays each accepted connection to -next,
// joining mbTLS sessions via in-band discovery. With -sgx it runs its
// TLS termination and data plane inside a simulated SGX enclave and
// attests during the secondary handshake.
package main

import (
	"flag"
	"log"
	"net"
	"path/filepath"
	"time"

	mbtls "repro"
	"repro/internal/certs"
	"repro/internal/mbapps"
)

func main() {
	listen := flag.String("listen", ":8444", "address to listen on")
	next := flag.String("next", "localhost:8443", "next hop (server or next middlebox)")
	pkiDir := flag.String("pki", "./pki", "PKI directory (provisioned by mbtls-server)")
	mode := flag.String("mode", "client-side", "middlebox mode: client-side or server-side")
	sgx := flag.Bool("sgx", false, "run inside a simulated SGX enclave")
	header := flag.String("header", "1.1 mbtls-proxy", "Via header value to insert")
	statsEvery := flag.Duration("stats", 0, "log cumulative session/fault counters at this interval (0 disables)")
	flag.Parse()

	cert, err := certs.LoadCertPEM(filepath.Join(*pkiDir, "proxy.pem"), filepath.Join(*pkiDir, "proxy.key"))
	if err != nil {
		log.Fatalf("mbtls-proxy: load certificate (run mbtls-server once to provision): %v", err)
	}

	cfg := mbtls.MiddleboxConfig{
		Mode:        mbtls.ClientSide,
		Certificate: cert,
		NewProcessor: func() mbtls.Processor {
			return mbapps.NewHeaderInserter("Via", *header)
		},
	}
	if *mode == "server-side" {
		cfg.Mode = mbtls.ServerSide
	}
	if *sgx {
		authority, err := mbtls.NewAuthority()
		if err != nil {
			log.Fatalf("mbtls-proxy: %v", err)
		}
		platform, err := authority.NewPlatform()
		if err != nil {
			log.Fatalf("mbtls-proxy: %v", err)
		}
		encl := platform.CreateEnclave(mbtls.CodeImage{Name: "mbtls-proxy", Version: "1.0"})
		cfg.Enclave = encl
		log.Printf("mbtls-proxy: enclave measurement %s", encl.Measurement())
	}

	mb, err := mbtls.NewMiddlebox(cfg)
	if err != nil {
		log.Fatalf("mbtls-proxy: %v", err)
	}

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		log.Fatalf("mbtls-proxy: %v", err)
	}
	log.Printf("mbtls-proxy: %s middlebox on %s → %s (sgx=%v)", *mode, *listen, *next, *sgx)
	if *statsEvery > 0 {
		go func() {
			for range time.Tick(*statsEvery) {
				s := mb.Stats()
				log.Printf("mbtls-proxy: stats sessions=%d mbtls=%d relayed=%d rekeyed=%d bytes=%d announce_skipped=%d faults=%d",
					s.Sessions, s.MbTLSSessions, s.RecordsRelayed, s.RecordsRekeyed,
					s.BytesProcessed, s.AnnounceSkipped, s.FaultsObserved)
			}
		}()
	}
	err = mb.Serve(ln, func() (net.Conn, error) {
		return net.Dial("tcp", *next)
	})
	log.Fatalf("mbtls-proxy: %v", err)
}
