// Command mbtls-proxy runs the paper's prototype middlebox: an mbTLS
// HTTP proxy that performs HTTP header insertion (§5, "Prototype
// Implementation"). It relays each accepted connection to -next,
// joining mbTLS sessions via in-band discovery. With -sgx it runs its
// TLS termination and data plane inside a simulated SGX enclave and
// attests during the secondary handshake.
//
// Connections are admitted through a session-host runtime: at most
// -max-sessions relay concurrently (excess connections are refused
// with an overloaded alert), and SIGINT/SIGTERM trigger a graceful
// drain bounded by -drain before the process exits.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"syscall"
	"time"

	mbtls "repro"
	"repro/internal/certs"
	"repro/internal/mbapps"
)

func main() {
	listen := flag.String("listen", ":8444", "address to listen on")
	next := flag.String("next", "localhost:8443", "next hop (server or next middlebox)")
	pkiDir := flag.String("pki", "./pki", "PKI directory (provisioned by mbtls-server)")
	mode := flag.String("mode", "client-side", "middlebox mode: client-side or server-side")
	accountability := flag.String("accountability", "attest", "accountability mode: attest or proxysig")
	sgx := flag.Bool("sgx", false, "run inside a simulated SGX enclave")
	header := flag.String("header", "1.1 mbtls-proxy", "Via header value to insert")
	statsEvery := flag.Duration("stats", 0, "log cumulative session/fault counters at this interval (0 disables)")
	maxSessions := flag.Int("max-sessions", 0, "max concurrent sessions (0 = default)")
	shards := flag.Int("shards", 0, "session-host shards (0 = one per core)")
	reusePort := flag.Bool("reuseport", false, "bind one SO_REUSEPORT listener per shard (Linux)")
	drain := flag.Duration("drain", 10*time.Second, "graceful-drain deadline on SIGINT/SIGTERM")
	stekRotate := flag.Duration("stek-rotate", time.Hour, "session-ticket key rotation interval (0 disables resumption)")
	keyshares := flag.Int("keyshares", 0, "precomputed X25519 keyshare pool size (0 = sized from shard count, negative disables)")
	relayWorkers := flag.Int("relay-workers", 0, "parallel relay crypto workers (0 = one per core, negative = serial relay)")
	flag.Parse()

	cfg := mbtls.MiddleboxConfig{
		NewProcessor: func() mbtls.Processor {
			return mbapps.NewHeaderInserter("Via", *header)
		},
	}
	switch *mode {
	case "client-side":
		cfg.Mode = mbtls.ClientSide
	case "server-side":
		cfg.Mode = mbtls.ServerSide
	default:
		fmt.Fprintf(os.Stderr, "mbtls-proxy: invalid -mode %q (accepted values: client-side, server-side)\n", *mode)
		os.Exit(2)
	}
	acct, err := mbtls.ParseAccountability(*accountability)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mbtls-proxy: invalid -accountability %q (accepted values: attest, proxysig)\n", *accountability)
		os.Exit(2)
	}
	cfg.Accountability = acct

	cert, err := certs.LoadCertPEM(filepath.Join(*pkiDir, "proxy.pem"), filepath.Join(*pkiDir, "proxy.key"))
	if err != nil {
		log.Fatalf("mbtls-proxy: load certificate (run mbtls-server once to provision): %v", err)
	}
	cfg.Certificate = cert

	if *sgx {
		authority, err := mbtls.NewAuthority()
		if err != nil {
			log.Fatalf("mbtls-proxy: %v", err)
		}
		platform, err := authority.NewPlatform()
		if err != nil {
			log.Fatalf("mbtls-proxy: %v", err)
		}
		encl := platform.CreateEnclave(mbtls.CodeImage{Name: "mbtls-proxy", Version: "1.0"})
		cfg.Enclave = encl
		log.Printf("mbtls-proxy: enclave measurement %s", encl.Measurement())
	}

	// The middlebox and host share one bounded buffer pool, so relay
	// memory is bounded by the pool rather than by session count.
	sessions := *maxSessions
	if sessions <= 0 {
		sessions = 256
	}
	pool := mbtls.NewRecordBufPool(2 * sessions)
	cfg.BufPool = pool

	// Handshake fast path: hop tickets under a rotating STEK, plus a
	// precomputed keyshare pool for the full handshakes that remain.
	var stek *mbtls.STEK
	if *stekRotate > 0 {
		if stek, err = mbtls.NewSTEK(*stekRotate); err != nil {
			log.Fatalf("mbtls-proxy: %v", err)
		}
		cfg.TicketKeys = stek
	}
	// The keyshare pool's refill workers and capacity track the host's
	// shard count by default, so precompute throughput scales with the
	// admission path instead of sagging at high concurrency.
	shardCount := *shards
	if shardCount <= 0 {
		shardCount = runtime.GOMAXPROCS(0)
	}
	var ksPool *mbtls.KeySharePool
	switch {
	case *keyshares == 0:
		ksPool = mbtls.NewKeySharePoolForShards(shardCount)
	case *keyshares > 0:
		ksPool = mbtls.NewKeySharePool(*keyshares, 0)
	}
	if ksPool != nil {
		defer ksPool.Close()
		cfg.KeyShares = ksPool
	}

	// Relay crypto workers: the parallel pipeline's pool is host-scoped
	// so one bulk session can use every configured core. A negative
	// count opts out of pipelining entirely (the single-core baseline).
	var relayPool *mbtls.RelayPool
	if *relayWorkers < 0 {
		cfg.SerialRelay = true
	} else {
		relayPool = mbtls.NewRelayPool(*relayWorkers)
		cfg.RelayPool = relayPool
	}

	mb, err := mbtls.NewMiddlebox(cfg)
	if err != nil {
		log.Fatalf("mbtls-proxy: %v", err)
	}
	// Listeners, accepted connections, and next-hop dials all ride the
	// batched-I/O TCP transport, sharing the host's record-buffer pool
	// for read-path reuse.
	tr := mbtls.NewTCPTransport(mbtls.TCPTransportConfig{ReusePort: *reusePort, Pool: pool})
	host, err := mbtls.NewSessionHost(mbtls.SessionHostConfig{
		Name:         "mbtls-proxy",
		MaxSessions:  sessions,
		Shards:       *shards,
		DrainTimeout: *drain,
		BufPool:      pool,
		Handler: mbtls.NewMiddleboxHandler(mb, func() (net.Conn, error) {
			return tr.Dial(*next)
		}),
		MiddleboxStats: mb.Stats,
		KeySharePool:   ksPool,
		TicketKeys:     stek,
		RelayPool:      relayPool,
	})
	if err != nil {
		log.Fatalf("mbtls-proxy: %v", err)
	}

	lns, err := tr.ListenShards(*listen, host.Shards())
	if err != nil {
		log.Fatalf("mbtls-proxy: %v", err)
	}
	log.Printf("mbtls-proxy: %s middlebox on %s → %s (sgx=%v, accountability=%s, shards=%d, listeners=%d)",
		*mode, *listen, *next, *sgx, acct, host.Shards(), len(lns))
	if *statsEvery > 0 {
		go func() {
			for range time.Tick(*statsEvery) {
				logStats(host.Metrics())
			}
		}()
	}

	// Shutdown closes the listener, which makes Serve return nil; main
	// then waits for the drain goroutine's final log line before
	// exiting.
	drained := make(chan struct{})
	go func() {
		defer close(drained)
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		<-sig
		log.Printf("mbtls-proxy: draining (deadline %v)", *drain)
		ctx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		err := host.Shutdown(ctx)
		m := host.Metrics()
		log.Printf("mbtls-proxy: drained in %v (forced %d): %v", m.DrainTime, m.ForceClosed, err)
	}()

	if err := host.ServeListeners(lns); err != nil {
		log.Fatalf("mbtls-proxy: %v", err)
	}
	<-drained
}

// logStats prints the host's aggregated counters, including the
// fronted middlebox's data-plane stats and the handshake fast-path
// surfaces (resumptions, keyshare pool hit rate, STEK rotations).
func logStats(m mbtls.SessionHostMetrics) {
	s := m.Middlebox
	log.Printf("mbtls-proxy: stats active=%d handshaking=%d accepted=%d completed=%d failed=%d overloaded=%d "+
		"sessions=%d mbtls=%d relayed=%d rekeyed=%d bytes=%d announce_skipped=%d faults=%d resumed=%d",
		m.ActiveSessions, m.HandshakesInFlight, m.Accepted, m.Completed, m.Failed, m.Overloaded,
		s.Sessions, s.MbTLSSessions, s.RecordsRelayed, s.RecordsRekeyed,
		s.BytesProcessed, s.AnnounceSkipped, s.FaultsObserved, s.SessionsResumed)
	if p := m.KeySharePool; p != nil {
		log.Printf("mbtls-proxy: fastpath keyshares hit=%d miss=%d hit_rate=%.2f wiped=%d stek_rotations=%d",
			p.Hits, p.Misses, p.HitRate(), p.Wiped, m.TicketKeyRotations)
	}
	if rp := m.RelayPool; rp != nil {
		log.Printf("mbtls-proxy: relaypool workers=%d jobs=%d records=%d util=%.2f depth=%d max_depth=%d "+
			"submit_stalls=%d window_stalls=%d reseal_p50=%s reseal_p99=%s",
			rp.Workers, rp.JobsProcessed, rp.RecordsProcessed, rp.Utilization, rp.InFlight, rp.MaxInFlight,
			rp.SubmitStalls, rp.WindowStalls, rp.ResealP50, rp.ResealP99)
	}
}
