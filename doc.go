// Package mbtls implements Middlebox TLS (mbTLS), the secure
// multi-entity communication protocol from:
//
//	David Naylor, Richard Li, Christos Gkantsidis, Thomas Karagiannis,
//	and Peter Steenkiste. "And Then There Were More: Secure
//	Communication for More Than Two Parties." CoNEXT 2017.
//	DOI 10.1145/3143361.3143383
//
// mbTLS lets TLS sessions explicitly include application-layer
// middleboxes — caches, compression proxies, virus scanners — without
// the security collapse of today's "split TLS" interception. Its
// properties (paper §3.2):
//
//   - P1 Data secrecy: only endpoints and authorized middlebox software
//     read session data; each hop is encrypted under its own key, so
//     observers cannot even tell whether a middlebox changed a record.
//   - P2 Data authentication: per-hop AEAD protection; the middlebox
//     infrastructure provider cannot forge records, because keys live
//     inside an SGX enclave.
//   - P3 Entity authentication: certificates identify the middlebox
//     service provider, and remote attestation identifies the exact
//     middlebox software (code measurement) bound to this handshake.
//   - P4 Path integrity: unique per-hop keys make skipped or reordered
//     middleboxes cryptographically detectable.
//   - P5 Legacy interoperability: either endpoint may be an unmodified
//     TLS 1.2 peer.
//   - P6 In-band discovery: on-path middleboxes join during the
//     handshake, with endpoint approval.
//   - P7 Minimal overhead: no added round trips; secondary handshakes
//     interleave with the primary one over one TCP connection.
//
// # Quick start
//
// A client dials through zero or more middleboxes:
//
//	sess, err := mbtls.Dial(conn, &mbtls.ClientConfig{
//		TLS: &mbtls.TLSConfig{RootCAs: roots, ServerName: "origin.example"},
//	})
//
// A server accepts, optionally welcoming announced middleboxes:
//
//	sess, err := mbtls.Accept(conn, &mbtls.ServerConfig{
//		TLS:               &mbtls.TLSConfig{Certificate: cert},
//		AcceptMiddleboxes: true,
//		MiddleboxTLS:      &mbtls.TLSConfig{RootCAs: mspRoots},
//	})
//
// A middlebox relays a hop and processes plaintext under its per-hop
// keys, optionally inside a (simulated) SGX enclave:
//
//	mb, err := mbtls.NewMiddlebox(mbtls.MiddleboxConfig{
//		Mode:        mbtls.ClientSide,
//		Certificate: mspCert,
//		Enclave:     encl,
//		NewProcessor: func() mbtls.Processor { return myProxy() },
//	})
//	host, err := mbtls.NewSessionHost(mbtls.SessionHostConfig{
//		Handler: mbtls.NewMiddleboxHandler(mb, dialNextHop),
//	})
//	go host.Serve(listener)
//
// The session host (DESIGN.md §9) owns the accept loop for every
// long-lived role: it bounds concurrent sessions, refuses overload
// with a typed error, and drains gracefully on shutdown.
//
// See the examples directory for complete programs, DESIGN.md for the
// system inventory, and EXPERIMENTS.md for the reproduction of the
// paper's evaluation.
package mbtls
