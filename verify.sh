#!/bin/sh
# verify.sh — the tier-1 verify recipe (ROADMAP.md), one command.
# Every gate runs even when an earlier one fails, so a single pass
# reports everything; the exit status is non-zero if any gate failed.
set -u

fail=0
gate() {
	echo "== $*"
	if ! "$@"; then
		echo "== FAILED: $*" >&2
		fail=1
	fi
}

cd "$(dirname "$0")"

gate go build ./...
gate go test ./...
gate go vet ./...
gate go test -race ./internal/core/ ./internal/tls12/ ./internal/netsim/ ./internal/sessionhost/ ./internal/hsfast/
gate go test -race ./internal/transport/...
# Parallel relay pipeline: the differential fuzzer's seed corpus plus
# the both-directions fault race tests, explicitly, under -race.
gate go test -race -run 'TestPipeline|FuzzParallelReseal' -count=1 ./internal/core/
gate go run ./cmd/mbtls-lint ./...
# proxysig smoke: the full proxysig session/audit/failure-path suite on
# netsim, then the quick handshake cells, which run both accountability
# modes end-to-end and fail if no middlebox evidence was signed.
gate go test -run 'TestProxySig|TestAccountabilityMismatch' -count=1 ./internal/core/
gate go run ./cmd/mbtls-bench handshake -quick
gate go run ./cmd/mbtls-bench transport -quick
# fig7 smoke: one serial and one pipelined cell end-to-end, so the
# workers sweep can't rot between full bench runs.
gate go run ./cmd/mbtls-bench fig7 -quick

echo "== gofmt -l ."
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
	echo "== FAILED: gofmt -l . (unformatted files):" >&2
	echo "$unformatted" >&2
	fail=1
fi

if [ "$fail" -eq 0 ]; then
	echo "verify: all tier-1 gates passed"
else
	echo "verify: FAILED" >&2
fi
exit "$fail"
